// Related work — fixed vs. dynamic logical structures (paper §5).
//
// "Raymond's algorithm uses a fixed logical structure while we use a
// dynamic one, which results in dynamic path compression." This benchmark
// quantifies that sentence: the same exclusive workload (the pure variant,
// one lock per operation) runs over Raymond's balanced static tree,
// Naimi's dynamic path-reversal tree, and the hierarchical protocol, and
// reports messages per request and mean latency as the cluster grows.
//
// Expected: the fixed tree pays ~2 x depth messages per privilege round
// trip (growing with log n and unable to adapt), while the dynamic
// structures flatten out.
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"
#include "workload/sim_driver.hpp"

using namespace hlock;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::SimWorkloadDriver;
using workload::WorkloadSpec;

namespace {

struct RunResult {
  double msgs_per_acq;
  double latency_ms;
};

RunResult run(Protocol protocol, workload::AppVariant variant,
              std::size_t nodes) {
  SimClusterOptions cluster_options;
  cluster_options.node_count = nodes;
  cluster_options.protocol = protocol;
  cluster_options.message_latency =
      sim::ibm_sp_preset().message_latency;
  cluster_options.seed = 83 + nodes;
  SimCluster cluster{cluster_options};

  WorkloadSpec spec;
  spec.variant = variant;
  spec.node_count = nodes;
  spec.ops_per_node = 50;
  spec.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
  spec.seed = 13 + nodes;

  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  return {static_cast<double>(cluster.metrics().messages().total()) /
              static_cast<double>(driver.stats().acquisitions),
          driver.stats().acq_latency.summarize().mean};
}

}  // namespace

int main() {
  std::printf("Fixed vs. dynamic structure (paper §5) — exclusive "
              "workload, IBM SP testbed, ratio 10\n\n");

  stats::TextTable table;
  table.set_header({"nodes", "raymond msgs", "naimi msgs", "hier msgs",
                    "raymond lat(ms)", "naimi lat(ms)", "hier lat(ms)"});

  for (std::size_t nodes : {4u, 8u, 16u, 32u, 64u, 120u}) {
    const RunResult raymond =
        run(Protocol::kRaymond, workload::AppVariant::kNaimiPure, nodes);
    const RunResult naimi =
        run(Protocol::kNaimi, workload::AppVariant::kNaimiPure, nodes);
    const RunResult hier = run(Protocol::kHierarchical,
                               workload::AppVariant::kHierarchical, nodes);
    table.add_row({std::to_string(nodes),
                   stats::TextTable::num(raymond.msgs_per_acq),
                   stats::TextTable::num(naimi.msgs_per_acq),
                   stats::TextTable::num(hier.msgs_per_acq),
                   stats::TextTable::num(raymond.latency_ms, 2),
                   stats::TextTable::num(naimi.latency_ms, 2),
                   stats::TextTable::num(hier.latency_ms, 2)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
