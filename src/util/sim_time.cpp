#include "util/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace hlock {

std::string to_string(SimTime t) {
  const double ns = static_cast<double>(t.count_ns());
  char buf[64];
  if (std::fabs(ns) >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  } else if (std::fabs(ns) >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else if (std::fabs(ns) >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  }
  return buf;
}

}  // namespace hlock
