// hlock_check — run the exhaustive model checker from the command line.
//
// Explores every interleaving of a small scripted scenario and reports the
// state count, or the violation with its action trace. With --lint (hier
// only) every first-visit terminal path is additionally checked against the
// paper's Tables 1(a)-(d) by the conformance linter, and a counterexample's
// structured event trace is dumped and re-linted post hoc.
//
// State-space reductions (hier only; docs/modelcheck.md):
//   --por        partial-order reduction (persistent sets)
//   --symmetry   canonicalize states modulo node-id permutations
//   --liveness   search the explored graph for starvation lassos
//   --minimize   BFS order, so counterexamples are depth-minimal
//   --cross-validate   run the same scenario unreduced and assert both
//                      agree on the verdict and violation fingerprint
//   --doctor starve|conflict   seed a known-bad spec corruption (checker
//                              self-test: the run SHOULD find a violation)
//
// Exit codes: 0 ok, 1 violation found, 2 usage error, 3 state budget
// exhausted, 4 internal error or cross-validation mismatch.
//
// Crash-stop exploration (docs/recovery.md): --crash lists victims that
// may crash at ANY reachable state; the explorer then interleaves failure
// detection, the epoch-fence campaign and protocol traffic exhaustively,
// checking per-epoch token conservation and that every SURVIVOR's script
// completes (no lost waiter). --crash-doctored seeds the double-
// regeneration bug (two same-epoch roots) that the per-epoch check must
// catch — an expect-violation run, like --doctor.
//
//   hlock_check --protocol hier --scenario mixed --nodes 3
//   hlock_check --protocol raymond --scenario exclusive --nodes 5
//   hlock_check --scenario contend --nodes 3 --por --symmetry --stats
//   hlock_check --scenario exclusive --doctor starve --liveness
//   hlock_check --scenario hold --nodes 3 --crash 0 --por --cross-validate
//   hlock_check --scenario hold --nodes 3 --crash 0 --crash-doctored
#include <cstdio>
#include <exception>
#include <fstream>

#include "lint/checker.hpp"
#include "modelcheck/explorer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "trace/event.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using modelcheck::ExploreOptions;
using modelcheck::ExploreResult;
using modelcheck::Script;
using modelcheck::ScriptOp;
using modelcheck::Verdict;
using proto::LockMode;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitStateLimit = 3;
constexpr int kExitInternal = 4;

std::vector<Script> build_scripts(const std::string& scenario,
                                  std::size_t nodes) {
  const Script exclusive{ScriptOp::acquire(LockMode::kW),
                         ScriptOp::release()};
  if (scenario == "exclusive") {
    return std::vector<Script>(nodes, exclusive);
  }
  if (scenario == "mixed") {
    std::vector<Script> scripts;
    const LockMode modes[] = {LockMode::kIR, LockMode::kR, LockMode::kW,
                              LockMode::kIW, LockMode::kU};
    for (std::size_t i = 0; i < nodes; ++i) {
      scripts.push_back({ScriptOp::acquire(modes[i % 5]),
                         ScriptOp::release()});
    }
    return scripts;
  }
  if (scenario == "upgrade") {
    std::vector<Script> scripts(nodes, {ScriptOp::acquire(LockMode::kIR),
                                        ScriptOp::release()});
    scripts[0] = {ScriptOp::acquire(LockMode::kU), ScriptOp::upgrade(),
                  ScriptOp::release()};
    return scripts;
  }
  if (scenario == "repeat") {
    return std::vector<Script>(
        nodes, {ScriptOp::acquire(LockMode::kR), ScriptOp::release(),
                ScriptOp::acquire(LockMode::kW), ScriptOp::release()});
  }
  if (scenario == "hold") {
    // Crash-during-hold: node 0 takes W and NEVER releases — pair with
    // --crash 0. Every other node contends for W, so the token must be
    // regenerated (epoch fence) for the survivors' scripts to complete;
    // without --crash the waiters never resolve and the run reports the
    // (expected) deadlock.
    std::vector<Script> scripts(nodes, exclusive);
    scripts[0] = {ScriptOp::acquire(LockMode::kW)};
    return scripts;
  }
  if (scenario == "contend") {
    // Re-acquisition under contention: every node requests twice, so the
    // token keeps circulating. The docs/modelcheck.md reference
    // configuration for measuring the reductions.
    return std::vector<Script>(
        nodes, {ScriptOp::acquire(LockMode::kU), ScriptOp::release(),
                ScriptOp::acquire(LockMode::kIR)});
  }
  throw UsageError("unknown scenario: " + scenario +
                   " (exclusive | mixed | upgrade | repeat | contend | "
                   "hold)");
}

std::vector<proto::NodeId> parse_victims(const std::string& spec,
                                         std::size_t nodes) {
  std::vector<proto::NodeId> victims;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(item, &used);
    } catch (const std::exception&) {
      throw UsageError("malformed --crash entry: '" + item + "'");
    }
    if (used != item.size() || value >= nodes) {
      throw UsageError("--crash victim out of range: '" + item + "'");
    }
    victims.push_back(proto::NodeId{static_cast<std::uint32_t>(value)});
    pos = comma + 1;
  }
  if (victims.empty()) throw UsageError("--crash lists no victims");
  if (victims.size() > nodes - 1) {
    throw UsageError("--crash must leave at least one survivor");
  }
  return victims;
}

modelcheck::DoctoredSpec build_doctor(const std::string& kind,
                                      std::size_t nodes) {
  modelcheck::DoctoredSpec doctor;
  if (kind == "none") return doctor;
  if (kind == "starve") {
    // Bounce the last node's requests at the network layer: its request
    // orbits forever, a seeded starvation cycle for --liveness.
    doctor.bounce = proto::NodeId{static_cast<std::uint32_t>(nodes - 1)};
    return doctor;
  }
  if (kind == "conflict") {
    // Flip Table 1(a) for a pair that genuinely co-occurs, turning a
    // reachable good state into a seeded safety violation.
    doctor.conflicts.push_back({LockMode::kR, LockMode::kIR});
    doctor.conflicts.push_back({LockMode::kR, LockMode::kR});
    return doctor;
  }
  throw UsageError("unknown --doctor: " + kind +
                   " (none | starve | conflict)");
}

void print_stats(const modelcheck::ExploreStats& stats) {
  const auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::printf("stats:\n");
  std::printf("  revisits              : %llu\n", u64(stats.revisits));
  std::printf("  por reduced states    : %llu\n",
              u64(stats.por_reduced_states));
  std::printf("  por pruned actions    : %llu\n",
              u64(stats.por_pruned_actions));
  std::printf("  por reject saturated  : %llu\n",
              u64(stats.por_reject_saturated));
  std::printf("  por reject visible    : %llu\n",
              u64(stats.por_reject_visible));
  std::printf("  por ignoring repairs  : %llu\n",
              u64(stats.por_ignoring_repairs));
  std::printf("  symmetry permutations : %llu\n",
              u64(stats.symmetry_permutations));
  std::printf("  peak frontier         : %llu\n", u64(stats.peak_frontier));
  std::printf("  max depth             : %llu\n", u64(stats.max_depth));
}

void write_stats_json(const std::string& path, const ExploreResult& result) {
  std::ofstream out(path);
  if (!out) throw UsageError("cannot write --stats-out file: " + path);
  const auto field = [&out](const char* name, std::uint64_t v,
                            bool last = false) {
    out << "  \"" << name << "\": " << v << (last ? "\n" : ",\n");
  };
  out << "{\n";
  out << "  \"verdict\": \"" << modelcheck::to_string(result.verdict)
      << "\",\n";
  out << "  \"violation_fingerprint\": \"" << result.violation_fingerprint
      << "\",\n";
  field("states_explored", result.states_explored);
  field("transitions", result.transitions);
  field("terminal_states", result.terminal_states);
  field("revisits", result.stats.revisits);
  field("por_reduced_states", result.stats.por_reduced_states);
  field("por_pruned_actions", result.stats.por_pruned_actions);
  field("por_reject_saturated", result.stats.por_reject_saturated);
  field("por_reject_visible", result.stats.por_reject_visible);
  field("por_ignoring_repairs", result.stats.por_ignoring_repairs);
  field("symmetry_permutations", result.stats.symmetry_permutations);
  field("peak_frontier", result.stats.peak_frontier);
  field("max_depth", result.stats.max_depth, true);
  out << "}\n";
}

void print_trace(const ExploreResult& result) {
  const std::size_t stem =
      result.trace.size() -
      static_cast<std::size_t>(result.lasso_cycle_length);
  std::printf("trace:\n");
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    if (result.lasso_cycle_length > 0 && i == stem) {
      std::printf("  -- cycle (repeats forever) --\n");
    }
    std::printf("  %s\n", result.trace[i].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_check",
                "exhaustively model-check a scripted lock scenario"};
  cli.add_option("protocol", "hier", "hier | naimi | raymond");
  cli.add_option("scenario", "mixed",
                 "exclusive | mixed | upgrade | repeat | contend");
  cli.add_option("nodes", "3", "number of nodes (1-8; state spaces grow "
                               "factorially)");
  cli.add_option("max-states", "5000000", "exploration budget");
  cli.add_flag("lint",
               "conformance-lint every terminal path against the paper's "
               "spec tables (hier only)");
  cli.add_flag("por", "partial-order reduction (hier only)");
  cli.add_flag("symmetry",
               "canonicalize states modulo node permutations (hier only)");
  cli.add_flag("liveness",
               "detect starvation lassos in the explored graph (hier only)");
  cli.add_flag("minimize",
               "breadth-first search for depth-minimal counterexamples "
               "(hier only)");
  cli.add_flag("stats", "print reduction/search counters");
  cli.add_option("stats-out", "", "write the counters as JSON to this file");
  cli.add_flag("cross-validate",
               "also run unreduced and require identical verdict and "
               "violation fingerprint (hier only)");
  cli.add_option("doctor", "none",
                 "seed a spec corruption: none | starve | conflict "
                 "(hier only; the run should FIND the seeded violation)");
  cli.add_option("crash", "",
                 "comma-separated node ids that may crash-stop at any "
                 "point; explores epoch-fenced recovery exhaustively "
                 "(hier only)");
  cli.add_flag("crash-doctored",
               "with --crash: seed the double-regeneration bug (two "
               "same-epoch fence roots); the run should FIND the "
               "violation");
  cli.add_option("obs-out", "",
                 "on a violation, export the counterexample's event trace "
                 "as a flight record (plus Chrome trace JSON) under this "
                 "directory");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return kExitOk;
    }
    const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 1, 8));
    const auto budget = static_cast<std::uint64_t>(
        cli.get_int("max-states", 1, 1'000'000'000));
    const std::string protocol = cli.get_string("protocol");
    const auto scripts = build_scripts(cli.get_string("scenario"), nodes);

    const bool lint = cli.get_flag("lint");
    const bool cross_validate = cli.get_flag("cross-validate");
    ExploreOptions options;
    options.max_states = budget;
    options.lint = lint;
    options.por = cli.get_flag("por");
    options.symmetry = cli.get_flag("symmetry");
    options.liveness = cli.get_flag("liveness");
    options.minimize = cli.get_flag("minimize");
    options.doctor = build_doctor(cli.get_string("doctor"), nodes);
    const std::string crash_spec = cli.get_string("crash");
    if (!crash_spec.empty()) {
      options.crash.victims = parse_victims(crash_spec, nodes);
      options.crash.recovery.doctor_double_fence =
          cli.get_flag("crash-doctored");
    } else if (cli.get_flag("crash-doctored")) {
      throw UsageError("--crash-doctored requires --crash");
    }
    const bool hier_only_features = lint || options.por ||
                                    options.symmetry || options.liveness ||
                                    options.minimize ||
                                    options.doctor.active() ||
                                    options.crash.active() ||
                                    cross_validate;
    if (hier_only_features && protocol != "hier") {
      throw UsageError(
          "--lint/--por/--symmetry/--liveness/--minimize/--doctor/"
          "--crash/--cross-validate apply to --protocol hier only");
    }

    ExploreResult result;
    if (protocol == "hier") {
      result = modelcheck::explore(scripts, options);
    } else if (protocol == "naimi") {
      result = modelcheck::explore_naimi(scripts, budget);
    } else if (protocol == "raymond") {
      result = modelcheck::explore_raymond(scripts, budget);
    } else {
      throw UsageError("unknown protocol: " + protocol);
    }

    std::printf("states explored : %llu\n",
                static_cast<unsigned long long>(result.states_explored));
    std::printf("transitions     : %llu\n",
                static_cast<unsigned long long>(result.transitions));
    std::printf("terminal states : %llu\n",
                static_cast<unsigned long long>(result.terminal_states));
    std::printf("state budget    : %llu of %llu used\n",
                static_cast<unsigned long long>(result.states_explored),
                static_cast<unsigned long long>(budget));
    if (cli.get_flag("stats")) print_stats(result.stats);
    const std::string stats_out = cli.get_string("stats-out");
    if (!stats_out.empty()) write_stats_json(stats_out, result);

    if (cross_validate) {
      // Same scenario, reductions off. Counterexample PATHS may differ
      // (exploration order), so compare the order-independent summary:
      // verdict plus violation fingerprint.
      ExploreOptions plain = options;
      plain.por = false;
      plain.symmetry = false;
      plain.minimize = false;
      const ExploreResult unreduced = modelcheck::explore(scripts, plain);
      std::printf("cross-validate  : reduced %llu states, unreduced %llu\n",
                  static_cast<unsigned long long>(result.states_explored),
                  static_cast<unsigned long long>(
                      unreduced.states_explored));
      if (unreduced.verdict != result.verdict ||
          unreduced.violation_fingerprint != result.violation_fingerprint) {
        std::printf("cross-validate  : MISMATCH — reduced %s [%s] vs "
                    "unreduced %s [%s]\n",
                    modelcheck::to_string(result.verdict).c_str(),
                    result.violation_fingerprint.c_str(),
                    modelcheck::to_string(unreduced.verdict).c_str(),
                    unreduced.violation_fingerprint.c_str());
        return kExitInternal;
      }
      std::printf("cross-validate  : verdicts agree (%s)\n",
                  modelcheck::to_string(result.verdict).c_str());
    }

    if (result.ok) {
      std::printf("verdict         : OK — every interleaving is safe, "
                  "live and convergent%s\n",
                  lint ? " (and every linted path conforms to the spec "
                         "tables)"
                       : "");
      return kExitOk;
    }
    if (result.verdict == Verdict::kStateLimit) {
      std::printf("verdict         : ABORTED — %s\n",
                  result.violation.c_str());
      return kExitStateLimit;
    }
    std::printf("verdict         : VIOLATION (%s) — %s\n",
                modelcheck::to_string(result.verdict).c_str(),
                result.violation.c_str());
    std::printf("fingerprint     : %s\n",
                result.violation_fingerprint.c_str());
    print_trace(result);
    if (!result.events.empty()) {
      // Post-hoc conformance lint of the counterexample: the structured
      // events pinpoint which rule/table broke, with event context.
      std::printf("counterexample events:\n");
      for (const trace::TraceEvent& event : result.events) {
        std::printf("  %s\n", trace::format_event(event).c_str());
      }
      // Defaults of LintOptions mirror the default HierConfig this tool
      // explores with; only the initial token holder needs pinning.
      lint::LintOptions lint_options;
      lint_options.initial_token = proto::NodeId{0};
      const lint::LintReport report =
          lint::check(result.events, lint_options);
      std::fputs(report.render().c_str(), stdout);
    }
    const std::string obs_out = cli.get_string("obs-out");
    if (!obs_out.empty() && !result.events.empty()) {
      // Ship the counterexample as a flight record: the rendered ring plus
      // spans/Chrome trace make the violating interleaving replayable in a
      // trace viewer instead of a wall of event lines.
      trace::TraceRecorder ring;
      obs::SpanCollector collector;
      for (const trace::TraceEvent& event : result.events) {
        collector.observe(event);
        ring.record(event);
      }
      obs::FlightRecordSources sources;
      sources.recorder = &ring;
      sources.spans = &collector;
      sources.node_count = nodes;
      const std::string record = obs::dump_flight_record(
          obs_out, "model-check violation: " + result.violation, sources);
      if (!record.empty()) {
        std::printf("flight record   : %s\n", record.c_str());
      }
    }
    return kExitViolation;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return kExitUsage;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "internal error: %s\n", error.what());
    return kExitInternal;
  }
}
