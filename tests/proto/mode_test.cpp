#include "proto/lock_mode.hpp"

#include <gtest/gtest.h>

namespace hlock::proto {
namespace {

TEST(LockMode, Names) {
  EXPECT_EQ(to_string(LockMode::kNL), "NL");
  EXPECT_EQ(to_string(LockMode::kIR), "IR");
  EXPECT_EQ(to_string(LockMode::kR), "R");
  EXPECT_EQ(to_string(LockMode::kU), "U");
  EXPECT_EQ(to_string(LockMode::kIW), "IW");
  EXPECT_EQ(to_string(LockMode::kW), "W");
}

TEST(LockMode, IndicesAreDense) {
  EXPECT_EQ(mode_index(LockMode::kNL), 0u);
  EXPECT_EQ(mode_index(LockMode::kW), 5u);
  EXPECT_EQ(kRealModes.size() + 1, kModeCount);
}

TEST(ModeSet, EmptyByDefault) {
  ModeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  for (LockMode m : kAllModes) EXPECT_FALSE(set.contains(m));
}

TEST(ModeSet, InsertEraseContains) {
  ModeSet set;
  set.insert(LockMode::kR);
  set.insert(LockMode::kW);
  EXPECT_TRUE(set.contains(LockMode::kR));
  EXPECT_TRUE(set.contains(LockMode::kW));
  EXPECT_FALSE(set.contains(LockMode::kIR));
  EXPECT_EQ(set.size(), 2);
  set.erase(LockMode::kR);
  EXPECT_FALSE(set.contains(LockMode::kR));
  EXPECT_EQ(set.size(), 1);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(ModeSet, OfLiteral) {
  const ModeSet set = ModeSet::of({LockMode::kIR, LockMode::kU});
  EXPECT_TRUE(set.contains(LockMode::kIR));
  EXPECT_TRUE(set.contains(LockMode::kU));
  EXPECT_EQ(set.size(), 2);
}

TEST(ModeSet, SetAlgebra) {
  const ModeSet a = ModeSet::of({LockMode::kIR, LockMode::kR});
  const ModeSet b = ModeSet::of({LockMode::kR, LockMode::kW});
  EXPECT_EQ(a | b, ModeSet::of({LockMode::kIR, LockMode::kR, LockMode::kW}));
  EXPECT_EQ(a & b, ModeSet::of({LockMode::kR}));
  ModeSet c = a;
  c |= b;
  EXPECT_EQ(c, a | b);
}

TEST(ModeSet, AllRealExcludesNL) {
  const ModeSet all = ModeSet::all_real();
  EXPECT_EQ(all.size(), 5);
  EXPECT_FALSE(all.contains(LockMode::kNL));
}

TEST(ModeSet, BitsRoundTrip) {
  const ModeSet set = ModeSet::of({LockMode::kU, LockMode::kIW});
  EXPECT_EQ(ModeSet::from_bits(set.bits()), set);
  // Top bits beyond the six modes are masked off.
  EXPECT_EQ(ModeSet::from_bits(0xFF).size(), 6);
}

TEST(ModeSet, ToString) {
  EXPECT_EQ(to_string(ModeSet{}), "{}");
  EXPECT_EQ(to_string(ModeSet::of({LockMode::kIR, LockMode::kR,
                                   LockMode::kU})),
            "{IR,R,U}");
}

}  // namespace
}  // namespace hlock::proto
