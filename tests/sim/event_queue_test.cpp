#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hlock::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(SimTime::ms(30), [&] { order.push_back(3); });
  queue.push(SimTime::ms(10), [&] { order.push_back(1); });
  queue.push(SimTime::ms(20), [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(SimTime::ms(5), [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeTracksHead) {
  EventQueue queue;
  queue.push(SimTime::ms(7), [] {});
  EXPECT_EQ(queue.next_time(), SimTime::ms(7));
  queue.push(SimTime::ms(2), [] {});
  EXPECT_EQ(queue.next_time(), SimTime::ms(2));
}

TEST(EventQueue, PopReturnsTimestampAndSeq) {
  EventQueue queue;
  const std::uint64_t seq = queue.push(SimTime::us(9), [] {});
  const Event event = queue.pop();
  EXPECT_EQ(event.at, SimTime::us(9));
  EXPECT_EQ(event.seq, seq);
}

TEST(EventQueue, EmptyAccessRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), UsageError);
  EXPECT_THROW(queue.next_time(), UsageError);
}

TEST(EventQueue, RandomizedOrderingMatchesSort) {
  EventQueue queue;
  hlock::Rng rng{2024};
  std::vector<std::pair<std::int64_t, std::uint64_t>> expected;
  std::vector<std::pair<std::int64_t, std::uint64_t>> actual;
  for (int i = 0; i < 5000; ++i) {
    const SimTime at = SimTime::ns(rng.range(0, 1000));  // many ties
    const std::uint64_t seq = queue.push(at, [] {});
    expected.emplace_back(at.count_ns(), seq);
  }
  std::sort(expected.begin(), expected.end());
  while (!queue.empty()) {
    const Event event = queue.pop();
    actual.emplace_back(event.at.count_ns(), event.seq);
  }
  EXPECT_EQ(actual, expected);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue queue;
  queue.push(SimTime::ms(10), [] {});
  queue.push(SimTime::ms(20), [] {});
  EXPECT_EQ(queue.pop().at, SimTime::ms(10));
  queue.push(SimTime::ms(5), [] {});
  EXPECT_EQ(queue.pop().at, SimTime::ms(5));
  EXPECT_EQ(queue.pop().at, SimTime::ms(20));
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace hlock::sim
