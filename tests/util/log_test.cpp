#include "util/log.hpp"

#include <gtest/gtest.h>

namespace hlock {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_threshold(); }
  void TearDown() override { set_log_threshold(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, DefaultThresholdSuppressesDebug) {
  set_log_threshold(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, ThresholdAdjustable) {
  set_log_threshold(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace));
  set_log_threshold(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, DisabledPathDoesNotEvaluateMessage) {
  set_log_threshold(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  HLOCK_LOG(kDebug, "value: " << expensive());
  EXPECT_EQ(evaluations, 0) << "message built despite disabled level";
}

TEST_F(LogTest, EnabledPathEvaluatesOnce) {
  set_log_threshold(LogLevel::kTrace);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  HLOCK_LOG(kError, "value: " << expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace hlock
