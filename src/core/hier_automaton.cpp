#include "core/hier_automaton.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::core {

using proto::HierFreeze;
using proto::HierGrant;
using proto::HierRelease;
using proto::HierRequest;
using proto::HierToken;
using proto::Message;
using proto::Payload;
using proto::QueuedRequest;

namespace {

/// The subset of `modes` a node whose owned mode is `owned` could grant as
/// a non-token copyset member; FREEZE messages are filtered down to this so
/// the protocol matches the paper's "transitively extended to the copyset
/// where required by modes" (Fig. 5 sends FREEZE(IR), not FREEZE(IR,R,U)).
ModeSet grantable_subset(LockMode owned, ModeSet modes) {
  ModeSet out;
  for (LockMode m : proto::kRealModes) {
    if (modes.contains(m) && non_token_can_grant(owned, m)) out.insert(m);
  }
  return out;
}

/// True if `extra` contains a mode not in `base`.
bool adds_modes(ModeSet extra, ModeSet base) {
  return (extra | base) != base;
}

}  // namespace

HierAutomaton::HierAutomaton(NodeId self, LockId lock, bool initially_token,
                             NodeId initial_parent, HierConfig config,
                             std::uint32_t initial_epoch)
    : self_(self), lock_(lock), config_(config), token_(initially_token),
      parent_(initial_parent), recovery_epoch_(initial_epoch) {
  if (token_) {
    HLOCK_REQUIRE(initial_parent.is_none(),
                  "the initial token node must have no parent");
  } else {
    HLOCK_REQUIRE(!initial_parent.is_none() && initial_parent != self,
                  "non-token nodes need an initial parent other than self");
  }
}

LockMode HierAutomaton::owned() const {
  // Definition 3: strongest mode held by any node in the subtree rooted
  // here. Children report their subtree aggregates, so one level suffices.
  LockMode strongest = held_;
  for (const CopysetEntry& entry : copyset_) {
    strongest = stronger_of(strongest, entry.mode);
  }
  return strongest;
}

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

Effects HierAutomaton::request(LockMode mode, std::uint8_t priority) {
  HLOCK_REQUIRE(mode != LockMode::kNL, "cannot request the empty mode");
  HLOCK_REQUIRE(held_ == LockMode::kNL,
                "node already holds the lock; release or upgrade instead");
  HLOCK_REQUIRE(pending_ == LockMode::kNL,
                "a request is already outstanding on this node");
  return step_request(mode, priority);
}

void HierAutomaton::enqueue(const QueuedRequest& entry) {
  auto position = queue_.begin();
  while (position != queue_.end() && position->priority >= entry.priority) {
    ++position;
  }
  queue_.insert(position, entry);
}

Effects HierAutomaton::step_request(LockMode mode, std::uint8_t priority) {
  Effects fx;
  const std::uint64_t seq = next_seq_++;
  pending_priority_ = priority;
  const LockMode owned_mode = owned();
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kRequest);
    event.mode = mode;
    event.ctx = owned_mode;
    event.seq = seq;
    event.priority = priority;
    emit(fx, std::move(event));
  }

  if (token_) {
    // Rule 3.2 applied to the token's own request: compatibility with the
    // owned mode is sufficient — no transfer is needed because the token is
    // already here. Rule 6 blocks modes frozen by queued requests.
    if (!frozen_.contains(mode) && token_can_grant(owned_mode, mode)) {
      held_ = mode;
      fx.entered_cs = true;
      emit_self_grant(fx, mode, owned_mode, seq);
    } else {
      // Rule 4.2: the token node queues ungrantable requests locally.
      pending_ = mode;
      enqueue(QueuedRequest{self_, mode, seq, priority});
      if (config_.trace_events) {
        auto event = make_event(trace::EventKind::kQueue);
        event.peer = self_;
        event.mode = mode;
        event.ctx = owned_mode;
        event.seq = seq;
        event.priority = priority;
        emit(fx, std::move(event));
      }
      refresh_frozen(fx);
    }
    return fx;
  }

  // Rule 2: no message is needed when this node already owns a mode at
  // least as strong and compatible — enter the critical section locally.
  // (Covered by the same predicate as Rule 3.1 grants; Rule 6 applies.)
  if (config_.child_grants && !frozen_.contains(mode) &&
      non_token_can_grant(owned_mode, mode)) {
    held_ = mode;
    fx.entered_cs = true;
    emit_self_grant(fx, mode, owned_mode, seq);
    return fx;
  }

  pending_ = mode;
  send(route(), HierRequest{self_, mode, seq, priority}, fx,
       proto::RequestId{self_, seq});
  // We are now the most recent requester we know of; while pending we
  // absorb (queue) incoming requests, exactly like the root of Naimi's
  // probable-owner tree.
  hint_ = NodeId::none();
  return fx;
}

Effects HierAutomaton::release() {
  HLOCK_REQUIRE(held_ != LockMode::kNL, "release without holding the lock");
  HLOCK_REQUIRE(!upgrading_, "cannot release while an upgrade is in flight");
  Effects fx;
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kExitCs);
    event.mode = held_;
    emit(fx, std::move(event));
  }
  held_ = LockMode::kNL;

  if (token_) {
    // Rule 5.1: the token services its local queue on every release.
    service_token_queue(fx);
    return fx;
  }

  // Non-token queues drain whenever the pending request resolves, so they
  // are empty for the whole critical section (Rule 4 operational spec).
  HLOCK_INVARIANT(queue_.empty(),
                  "non-token node had queued requests while inside its CS");
  propagate_weakening(fx);
  return fx;
}

Effects HierAutomaton::upgrade() {
  HLOCK_REQUIRE(held_ == LockMode::kU, "upgrade is only legal from mode U");
  HLOCK_REQUIRE(pending_ == LockMode::kNL,
                "a request is already outstanding on this node");
  // U conflicts with U/IW/W and the token transfers on any stronger grant,
  // so a U holder is always the token node (§3.4).
  HLOCK_INVARIANT(token_, "a U holder must be the token node");

  Effects fx;
  upgrading_ = true;
  pending_ = LockMode::kW;
  pending_priority_ = 0;
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kUpgradeBegin);
    event.mode = LockMode::kW;
    event.ctx = LockMode::kU;
    emit(fx, std::move(event));
  }
  if (copyset_.empty()) {
    // Nobody else holds the lock: Rule 7 completes immediately.
    maybe_complete_upgrade(fx);
  } else {
    // Children may hold IR/R; freeze those modes (Table 1(d) row U, col W)
    // so the upgrade cannot starve, then wait for releases.
    refresh_frozen(fx);
  }
  return fx;
}

Effects HierAutomaton::on_message(const Message& message) {
  HLOCK_REQUIRE(message.to == self_, "message delivered to the wrong node");
  HLOCK_REQUIRE(message.lock == lock_,
                "message delivered to the wrong lock instance");
  Effects fx;
  if (message.epoch != recovery_epoch_) {
    // Stale-drop rule (docs/recovery.md): the message was minted under
    // protocol state a crash fence has regenerated. Acting on it could
    // resurrect a pre-crash grant or token; dropping is always safe because
    // the fence reconstructed every surviving hold and waiter from reports.
    fx.stale_drop = true;
    return fx;
  }
  if (const auto* request = std::get_if<HierRequest>(&message.payload)) {
    handle_request(*request, fx);
  } else if (const auto* grant = std::get_if<HierGrant>(&message.payload)) {
    handle_grant(message.from, *grant, own_pending_seq(message.request), fx);
  } else if (const auto* token = std::get_if<HierToken>(&message.payload)) {
    handle_token(message.from, *token, own_pending_seq(message.request), fx);
  } else if (const auto* release =
                 std::get_if<HierRelease>(&message.payload)) {
    handle_release(message.from, *release, fx);
  } else if (const auto* freeze = std::get_if<HierFreeze>(&message.payload)) {
    handle_freeze(*freeze, fx);
  } else {
    HLOCK_INVARIANT(false,
                    "non-hierarchical payload delivered to a HierAutomaton");
  }
  return fx;
}

Effects HierAutomaton::install_fence(const proto::EpochFence& fence) {
  Effects fx;
  if (fence.epoch <= recovery_epoch_) return fx;  // duplicate/stale fence
  recovery_epoch_ = fence.epoch;

  // Pre-crash routing hints, freezes and re-issue budgets are meaningless
  // under the regenerated tree; the new root recomputes freeze sets from
  // its rebuilt queue below.
  hint_ = NodeId::none();
  reissue_count_ = 0;
  const ModeSet was_frozen = frozen_;
  frozen_.clear();
  emit_frozen_change(fx, was_frozen);
  // Every copyset relationship is re-established by the fence (the star
  // topology below); queued requests are dropped everywhere because every
  // surviving waiter reported its own request and reappears in the new
  // root's queue.
  copyset_.clear();
  queue_.clear();

  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kFence);
    event.peer = fence.new_root;
    event.token = self_ == fence.new_root;
    emit(fx, std::move(event));
  }

  if (self_ == fence.new_root) {
    token_ = true;
    parent_ = NodeId::none();
    reported_owned_ = LockMode::kNL;
    parent_epoch_ = 0;
    // Rebuilt copyset entries and their children's parent_epoch_ mirrors
    // are all stamped with the fence epoch, so post-fence releases match;
    // future grants must mint strictly larger grant epochs.
    for (const proto::FenceHolder& holder : fence.holders) {
      if (holder.node == self_) continue;
      copyset_add(holder.node, holder.mode, fence.epoch);
      if (config_.trace_events) {
        auto join = make_event(trace::EventKind::kCopysetJoin);
        join.peer = holder.node;
        join.mode = holder.mode;
        emit(fx, std::move(join));
      }
    }
    epoch_counter_ = std::max(epoch_counter_, fence.epoch);
    for (const proto::QueuedRequest& entry : fence.queue) enqueue(entry);
    // An in-flight Rule 7 upgrade survives at the root (a U holder is
    // always the token node, and a live token holder is always re-elected
    // root); its conflicting children may all have died, completing it.
    maybe_complete_upgrade(fx);
    service_token_queue(fx);
    return fx;
  }

  // Survivor under the new star: re-parent to the root, mirroring the
  // root's rebuilt entry for us (fence epoch, our held mode) when we hold.
  // A held mode and a pending request survive untouched — the pending
  // request reappears in the root's queue via our own report. Demoting
  // token_ here only happens when this node was fenced out while believing
  // it held the token (a false suspicion of a live node, or a doctored
  // double fence); it must stop arbitrating either way.
  token_ = false;
  if (upgrading_) {
    upgrading_ = false;
    pending_ = LockMode::kNL;
  }
  parent_ = fence.new_root;
  parent_epoch_ = fence.epoch;
  reported_owned_ = LockMode::kNL;
  for (const proto::FenceHolder& holder : fence.holders) {
    if (holder.node == self_) reported_owned_ = holder.mode;
  }
  return fx;
}

// ---------------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------------

void HierAutomaton::handle_request(const HierRequest& request, Effects& fx) {
  if (request.requester == self_) {
    // Our own request came back: a routing hint somewhere still pointed at
    // us from an earlier request of ours. Every node on the loop has just
    // re-pointed its hint here, so re-issuing along the granter link takes
    // a different (token-rooted) path. A spin budget guards liveness.
    HLOCK_INVARIANT(pending_ != LockMode::kNL,
                    "own request returned but nothing is pending");
    HLOCK_INVARIANT(++reissue_count_ < 64,
                    "request routing is spinning (probable hint cycle)");
    send(parent_, request, fx, proto::RequestId{self_, request.seq});
    return;
  }
  const QueuedRequest entry{request.requester, request.mode, request.seq,
                            request.priority};

  if (token_) {
    handle_request_as_token(entry, fx);
    refresh_frozen(fx);
    return;
  }

  // Rule 3.1: grant locally when this copyset member's owned mode is
  // compatible and at least as strong (Table 1(b)), unless frozen (Rule 6).
  if (config_.child_grants && !frozen_.contains(request.mode) &&
      non_token_can_grant(owned(), request.mode)) {
    copy_grant(entry, fx);
    return;
  }

  // Rule 4.1: queue locally when Table 1(c) permits it for our own pending
  // mode. With path compression enabled, a pending node queues every
  // request — it must be absorbing or reversal hints pointing at it could
  // route requests in cycles (see HierConfig::path_compression).
  if (pending_ != LockMode::kNL &&
      (config_.path_compression ||
       (config_.local_queueing &&
        queue_or_forward(pending_, request.mode) ==
            QueueOrForward::kQueue))) {
    enqueue(entry);
    if (config_.trace_events) {
      auto event = make_event(trace::EventKind::kQueue);
      event.peer = entry.requester;
      event.mode = entry.mode;
      event.ctx = pending_;  // the Table 1(c) decision context
      event.seq = entry.seq;
      event.priority = entry.priority;
      emit(fx, std::move(event));
    }
    return;
  }

  // Forward along the routing hint (falling back to the granter link),
  // then reverse the hint to the requester (path compression). Preferring
  // parent_ when the hint already points at the requester avoids the
  // trivial one-hop bounce; if even parent_ is the requester, the bounce is
  // handled by the requester's own-request-return re-issue path.
  const NodeId target =
      route() == request.requester ? parent_ : route();
  send(target, request, fx,
       proto::RequestId{request.requester, request.seq});
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kForward);
    event.peer = request.requester;
    event.mode = request.mode;
    event.ctx = pending_;  // kNL when forwarding without a pending request
    event.seq = request.seq;
    event.priority = request.priority;
    event.detail = to_string(target);
    emit(fx, std::move(event));
  }
  if (config_.path_compression) hint_ = request.requester;
}

void HierAutomaton::handle_request_as_token(const QueuedRequest& request,
                                            Effects& fx) {
  const LockMode owned_mode = owned();
  if (!frozen_.contains(request.mode) &&
      token_can_grant(owned_mode, request.mode)) {
    if (token_grant_transfers(owned_mode, request.mode)) {
      transfer_token(request, fx);
    } else {
      copy_grant(request, fx);
    }
    return;
  }
  // Rule 4.2: the token queues what it cannot grant, regardless of its own
  // pending state; refresh_frozen() (run by the caller) installs Table 1(d)
  // freeze sets for the queued mode.
  enqueue(request);
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kQueue);
    event.peer = request.requester;
    event.mode = request.mode;
    event.ctx = owned_mode;  // the token's Table 1(d) freeze context
    event.seq = request.seq;
    event.priority = request.priority;
    emit(fx, std::move(event));
  }
}

void HierAutomaton::handle_grant(NodeId from, const HierGrant& grant,
                                 std::uint64_t seq, Effects& fx) {
  HLOCK_INVARIANT(pending_ != LockMode::kNL && grant.mode == pending_,
                  "grant does not match this node's pending request");
  HLOCK_INVARIANT(!token_, "the token node cannot receive a copy grant");
  detach_from_old_parent(from, fx);
  // The grant carries the granter's resulting copyset entry and its epoch;
  // mirror both so later releases are stamped and filtered correctly.
  reported_owned_ = grant.entry_mode;
  parent_epoch_ = grant.epoch;
  held_ = grant.mode;
  pending_ = LockMode::kNL;
  parent_ = from;  // the granter admitted us into its copyset
  hint_ = NodeId::none();  // the granter link is the freshest route we have
  reissue_count_ = 0;
  const ModeSet was_frozen = frozen_;
  frozen_.clear();
  emit_frozen_change(fx, was_frozen);
  fx.entered_cs = true;
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kEnterCs);
    event.peer = from;  // the granter
    event.mode = grant.mode;
    event.seq = seq;
    emit(fx, std::move(event));
  }
  drain_local_queue(fx);
}

void HierAutomaton::handle_token(NodeId from, const HierToken& token,
                                 std::uint64_t seq, Effects& fx) {
  HLOCK_INVARIANT(!token_, "token transferred to the current token node");
  HLOCK_INVARIANT(pending_ != LockMode::kNL &&
                      token.granted_mode == pending_,
                  "token does not match this node's pending request");
  detach_from_old_parent(from, fx);
  token_ = true;
  parent_ = NodeId::none();
  hint_ = NodeId::none();
  reissue_count_ = 0;
  reported_owned_ = LockMode::kNL;  // the token node has no parent
  held_ = token.granted_mode;
  pending_ = LockMode::kNL;
  const ModeSet was_frozen = frozen_;
  frozen_.clear();
  emit_frozen_change(fx, was_frozen);
  if (token.sender_owned != LockMode::kNL) {
    // Epoch 0 is reserved for transfer-created entries; the old token
    // symmetrically resets its parent_epoch_ to 0 in transfer_token().
    copyset_add(from, token.sender_owned, 0);
    if (config_.trace_events) {
      auto event = make_event(trace::EventKind::kCopysetJoin);
      event.peer = from;
      event.mode = token.sender_owned;
      emit(fx, std::move(event));
    }
  }
  // Responsibility for the old token's queue moves here; our own locally
  // queued requests (logged while our request was pending) are younger and
  // merge behind the shipped entries of equal priority, preserving the
  // logical distributed FIFO within each priority level.
  std::deque<QueuedRequest> local;
  local.swap(queue_);
  queue_.assign(token.queue.begin(), token.queue.end());
  for (const QueuedRequest& entry : local) enqueue(entry);
  fx.entered_cs = true;
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kEnterCs);
    event.peer = from;  // the old token node
    event.mode = token.granted_mode;
    event.seq = seq;
    emit(fx, std::move(event));
  }
  service_token_queue(fx);
}

void HierAutomaton::handle_release(NodeId from, const HierRelease& release,
                                   Effects& fx) {
  CopysetEntry* entry = copyset_find(from);
  if (entry == nullptr || entry->epoch != release.epoch) {
    // Stale: generated by the child before it saw our latest grant (or
    // before a token transfer that already removed the entry). The grant
    // path has re-synchronized the relationship; this message is obsolete.
    return;
  }
  if (release.new_owned == LockMode::kNL) {
    std::erase_if(copyset_,
                  [&](const CopysetEntry& e) { return e.node == from; });
    if (config_.trace_events) {
      auto event = make_event(trace::EventKind::kCopysetLeave);
      event.peer = from;
      emit(fx, std::move(event));
    }
  } else {
    entry->mode = release.new_owned;
    if (config_.trace_events) {
      // Re-reported at a weaker mode: emitted as a join-style update so
      // trace consumers can mirror the copyset exactly.
      auto event = make_event(trace::EventKind::kCopysetJoin);
      event.peer = from;
      event.mode = release.new_owned;
      emit(fx, std::move(event));
    }
  }

  if (token_) {
    // Rule 5.1: a release may unblock queued requests or a waiting upgrade.
    maybe_complete_upgrade(fx);
    service_token_queue(fx);
    return;
  }
  // Rule 5.2: releases only ever weaken owned modes, which can never enable
  // a Rule 3.1 grant at a non-token node, so the local queue needs no scan;
  // only the weakening propagates.
  propagate_weakening(fx);
}

void HierAutomaton::handle_freeze(const HierFreeze& freeze, Effects& fx) {
  if (!config_.freezing) return;
  if (token_) {
    // A freeze from a previous parent that raced with a token transfer to
    // this node; the token's own queue now governs its frozen set.
    return;
  }
  const ModeSet was_frozen = frozen_;
  frozen_ |= freeze.modes;
  emit_frozen_change(fx, was_frozen);
  notify_frozen_children(fx);
}

void HierAutomaton::detach_from_old_parent(NodeId granter, Effects& fx) {
  // A node may be granted by a node other than its current parent (the
  // first capable granter on the propagation path, or the token). If the
  // old parent still records this node in its copyset (reported_owned_ is
  // the mirror of that entry), the whole subtree moves under the granter,
  // so the old parent must drop the entry or its owned-mode aggregate (and
  // release routing) goes stale. Same-parent grants just strengthen the
  // existing entry on the granter's side, and a parent transferring the
  // token removes the entry itself.
  if (granter != parent_ && reported_owned_ != LockMode::kNL) {
    send(parent_, HierRelease{LockMode::kNL, parent_epoch_}, fx);
  }
}

// ---------------------------------------------------------------------------
// Grants
// ---------------------------------------------------------------------------

void HierAutomaton::copy_grant(const QueuedRequest& request, Effects& fx) {
  // The Table 1(b) authority for this grant is the owned mode *before* the
  // requester is admitted — record it as the grant's decision context.
  const LockMode granter_owned = owned();
  const std::uint32_t epoch = ++epoch_counter_;
  const LockMode entry_mode =
      copyset_add(request.requester, request.mode, epoch);
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kGrant);
    event.peer = request.requester;
    event.mode = request.mode;
    event.ctx = granter_owned;
    event.seq = request.seq;
    event.priority = request.priority;
    emit(fx, std::move(event));
    auto join = make_event(trace::EventKind::kCopysetJoin);
    join.peer = request.requester;
    join.mode = entry_mode;
    emit(fx, std::move(join));
  }
  send(request.requester, HierGrant{request.mode, entry_mode, epoch}, fx,
       proto::RequestId{request.requester, request.seq});
  // A freshly admitted child able to grant a currently frozen mode must be
  // frozen immediately or it could hand out bypass grants (Rule 6).
  notify_frozen_children(fx);
}

void HierAutomaton::transfer_token(const QueuedRequest& request, Effects& fx) {
  HLOCK_INVARIANT(token_, "only the token node can transfer the token");
  // If the requester was a copyset child, it leaves our subtree: we are
  // about to become *its* child, and its contribution must not be counted
  // in the residual owned mode we report (that would create a cycle).
  const bool was_child = copyset_find(request.requester) != nullptr;
  std::erase_if(copyset_,
                [&](const CopysetEntry& e) { return e.node == request.requester; });
  if (config_.trace_events && was_child) {
    auto leave = make_event(trace::EventKind::kCopysetLeave);
    leave.peer = request.requester;
    emit(fx, std::move(leave));
  }

  HierToken token;
  token.granted_mode = request.mode;
  token.sender_owned = owned();
  token.queue.assign(queue_.begin(), queue_.end());
  if (config_.trace_events) {
    // Emitted while token_ is still true: the event records the sender as
    // the authority that moved the token.
    auto event = make_event(trace::EventKind::kTokenTransfer);
    event.peer = request.requester;
    event.mode = request.mode;
    event.ctx = token.sender_owned;  // residual owned mode shipped along
    event.seq = request.seq;
    event.priority = request.priority;
    event.detail = std::to_string(token.queue.size()) + " queued shipped";
    emit(fx, std::move(event));
  }
  queue_.clear();
  const ModeSet was_frozen = frozen_;
  frozen_.clear();
  token_ = false;
  emit_frozen_change(fx, was_frozen);
  parent_ = request.requester;
  hint_ = NodeId::none();  // the new token is also the best route
  // The new token node records us at the residual mode we ship, under the
  // reserved transfer epoch 0 (see handle_token).
  reported_owned_ = token.sender_owned;
  parent_epoch_ = 0;
  send(request.requester, std::move(token), fx,
       proto::RequestId{request.requester, request.seq});
}

// ---------------------------------------------------------------------------
// Queue service
// ---------------------------------------------------------------------------

void HierAutomaton::service_token_queue(Effects& fx) {
  HLOCK_INVARIANT(token_, "queue service ran on a non-token node");
  // Rule 5.1 + Rule 6: walk the FIFO queue; grant every entry whose mode is
  // non-frozen and compatible with the current owned mode. Entries that
  // stay re-install their freeze sets via refresh_frozen() below, so a
  // compatible entry granted past an earlier incompatible one can never
  // conflict with it (its mode would be frozen).
  for (auto it = queue_.begin(); it != queue_.end();) {
    const QueuedRequest entry = *it;
    const LockMode owned_mode = owned();
    const bool blocked = (config_.freezing && frozen_.contains(entry.mode)) ||
                         !token_can_grant(owned_mode, entry.mode) ||
                         upgrading_;
    if (blocked) {
      ++it;
      continue;
    }
    if (entry.requester == self_) {
      // Our own queued request: no transfer needed, simply start holding.
      it = queue_.erase(it);
      held_ = entry.mode;
      pending_ = LockMode::kNL;
      fx.entered_cs = true;
      emit_self_grant(fx, entry.mode, owned_mode, entry.seq);
      continue;
    }
    if (token_grant_transfers(owned_mode, entry.mode)) {
      // The token itself moves: every remaining queued request ships with
      // it (FIFO order intact) and this node's duty as arbiter ends.
      it = queue_.erase(it);
      transfer_token(entry, fx);
      return;
    }
    it = queue_.erase(it);
    copy_grant(entry, fx);
  }
  refresh_frozen(fx);
}

void HierAutomaton::drain_local_queue(Effects& fx) {
  // Rule 4 operational spec: requests queued while our own request was
  // pending are reconsidered once it resolves — granted where Rule 3.1 now
  // allows, forwarded toward the token otherwise (we no longer have a
  // pending mode to justify holding them).
  HLOCK_INVARIANT(!token_, "token nodes service their queue, not drain it");
  std::deque<QueuedRequest> work;
  work.swap(queue_);
  for (const QueuedRequest& entry : work) {
    if (config_.child_grants && !frozen_.contains(entry.mode) &&
        non_token_can_grant(owned(), entry.mode)) {
      copy_grant(entry, fx);
    } else {
      send(parent_,
           HierRequest{entry.requester, entry.mode, entry.seq,
                       entry.priority},
           fx, proto::RequestId{entry.requester, entry.seq});
      if (config_.trace_events) {
        auto event = make_event(trace::EventKind::kForward);
        event.peer = entry.requester;
        event.mode = entry.mode;
        // ctx stays kNL: our pending request just resolved, so Table 1(c)
        // no longer applies — forwarding is the unconditional default.
        event.seq = entry.seq;
        event.priority = entry.priority;
        event.detail = to_string(parent_);
        emit(fx, std::move(event));
      }
    }
  }
}

void HierAutomaton::maybe_complete_upgrade(Effects& fx) {
  if (!upgrading_ || !copyset_.empty()) return;
  // Rule 7: all children released; atomically strengthen U -> W. The U hold
  // was never released, so no other writer can have intervened.
  HLOCK_INVARIANT(held_ == LockMode::kU, "upgrade completing without U held");
  held_ = LockMode::kW;
  pending_ = LockMode::kNL;
  upgrading_ = false;
  fx.upgraded = true;
  if (config_.trace_events) {
    auto event = make_event(trace::EventKind::kUpgraded);
    event.mode = LockMode::kW;
    event.ctx = LockMode::kU;
    emit(fx, std::move(event));
  }
}

// ---------------------------------------------------------------------------
// Freezing (Rule 6)
// ---------------------------------------------------------------------------

void HierAutomaton::refresh_frozen(Effects& fx) {
  if (!config_.freezing) return;
  if (!token_) return;
  const LockMode owned_mode = owned();
  ModeSet frozen;
  for (const QueuedRequest& entry : queue_) {
    frozen |= freeze_set(owned_mode, entry.mode);
  }
  if (upgrading_) frozen |= freeze_set(owned_mode, LockMode::kW);
  const ModeSet before = frozen_;
  frozen_ = frozen;
  emit_frozen_change(fx, before);
  notify_frozen_children(fx);
}

void HierAutomaton::notify_frozen_children(Effects& fx) {
  if (!config_.freezing || frozen_.empty()) return;
  for (CopysetEntry& child : copyset_) {
    const ModeSet relevant = grantable_subset(child.mode, frozen_);
    if (relevant.empty() || !adds_modes(relevant, child.freeze_sent)) {
      continue;
    }
    child.freeze_sent |= relevant;
    send(child.node, HierFreeze{relevant}, fx);
  }
}

// ---------------------------------------------------------------------------
// Copyset maintenance
// ---------------------------------------------------------------------------

LockMode HierAutomaton::copyset_add(NodeId node, LockMode mode,
                                    std::uint32_t epoch) {
  HLOCK_INVARIANT(node != self_, "a node cannot be its own copyset child");
  if (CopysetEntry* entry = copyset_find(node)) {
    entry->mode = stronger_of(entry->mode, mode);
    entry->epoch = epoch;
    return entry->mode;
  }
  copyset_.push_back(CopysetEntry{node, mode, epoch, ModeSet{}});
  return mode;
}

CopysetEntry* HierAutomaton::copyset_find(NodeId node) {
  auto it = std::find_if(copyset_.begin(), copyset_.end(),
                         [&](const CopysetEntry& e) { return e.node == node; });
  return it == copyset_.end() ? nullptr : &*it;
}

void HierAutomaton::propagate_weakening(Effects& fx) {
  HLOCK_INVARIANT(!token_, "the token node has no parent to notify");
  const LockMode owned_now = owned();
  // Rule 5.2: notify only on weakening — i.e. when the parent's recorded
  // entry (mirrored in reported_owned_) overestimates the actual state.
  if (!stronger(reported_owned_, owned_now)) return;
  reported_owned_ = owned_now;
  send(parent_, HierRelease{owned_now, parent_epoch_}, fx);
  if (owned_now == LockMode::kNL) {
    // We left every copyset; any freeze episode we took part in is over
    // (a future grant re-delivers FREEZE if still needed).
    const ModeSet was_frozen = frozen_;
    frozen_.clear();
    emit_frozen_change(fx, was_frozen);
  }
}

void HierAutomaton::send(NodeId to, Payload payload, Effects& fx,
                         proto::RequestId request) const {
  HLOCK_INVARIANT(!to.is_none(), "attempted to send to the null node");
  Message message{self_, to, lock_, std::move(payload)};
  message.request = request;
  message.epoch = recovery_epoch_;
  fx.messages.push_back(std::move(message));
}

// ---------------------------------------------------------------------------
// Trace event emission
// ---------------------------------------------------------------------------

trace::TraceEvent HierAutomaton::make_event(trace::EventKind kind) const {
  trace::TraceEvent event;
  event.kind = kind;
  event.node = self_;
  event.lock = lock_;
  event.token = token_;
  event.epoch = recovery_epoch_;
  return event;
}

void HierAutomaton::emit(Effects& fx, trace::TraceEvent event) const {
  if (config_.trace_events) fx.events.push_back(std::move(event));
}

void HierAutomaton::emit_frozen_change(Effects& fx, ModeSet before) const {
  if (!config_.trace_events || frozen_ == before) return;
  auto event = make_event(adds_modes(frozen_, before)
                              ? trace::EventKind::kFreeze
                              : trace::EventKind::kUnfreeze);
  event.modes = frozen_;
  fx.events.push_back(std::move(event));
}

void HierAutomaton::emit_self_grant(Effects& fx, LockMode mode,
                                    LockMode owned_before,
                                    std::uint64_t seq) const {
  if (!config_.trace_events) return;
  auto grant = make_event(trace::EventKind::kLocalGrant);
  grant.mode = mode;
  grant.ctx = owned_before;
  grant.seq = seq;
  fx.events.push_back(std::move(grant));
  auto enter = make_event(trace::EventKind::kEnterCs);
  enter.mode = mode;
  enter.seq = seq;
  fx.events.push_back(std::move(enter));
}

std::string HierAutomaton::fingerprint() const {
  // Every behavior-relevant member, in a fixed order. next_seq_ is
  // included: it is carried in future request messages and therefore part
  // of observable behavior (it keeps fingerprints honest even though seq
  // values never influence protocol decisions).
  std::ostringstream os;
  os << (token_ ? 'T' : 't') << parent_.value() << '/' << hint_.value()
     << '/' << mode_index(held_) << mode_index(pending_)
     << 'p' << static_cast<int>(pending_priority_)
     << (upgrading_ ? 'U' : 'u') << static_cast<int>(frozen_.bits());
  os << 'r' << mode_index(reported_owned_) << 'e' << parent_epoch_ << 'c'
     << epoch_counter_ << 's' << next_seq_ << 'i' << reissue_count_ << 'E'
     << recovery_epoch_;
  os << "|cs";
  for (const CopysetEntry& entry : copyset_) {
    os << '(' << entry.node.value() << ',' << mode_index(entry.mode) << ','
       << entry.epoch << ',' << static_cast<int>(entry.freeze_sent.bits())
       << ')';
  }
  os << "|q";
  for (const proto::QueuedRequest& entry : queue_) {
    os << '(' << entry.requester.value() << ',' << mode_index(entry.mode)
       << ',' << entry.seq << ',' << static_cast<int>(entry.priority)
       << ')';
  }
  return os.str();
}

std::string HierAutomaton::fingerprint(
    std::span<const std::uint32_t> relabel) const {
  const auto mapped = [relabel](NodeId id) {
    if (id.is_none() || id.value() >= relabel.size()) return id.value();
    return relabel[id.value()];
  };
  std::ostringstream os;
  os << (token_ ? 'T' : 't') << mapped(parent_) << '/' << mapped(hint_)
     << '/' << mode_index(held_) << mode_index(pending_)
     << 'p' << static_cast<int>(pending_priority_)
     << (upgrading_ ? 'U' : 'u') << static_cast<int>(frozen_.bits());
  os << 'r' << mode_index(reported_owned_) << 'e' << parent_epoch_ << 'c'
     << epoch_counter_ << 's' << next_seq_ << 'i' << reissue_count_ << 'E'
     << recovery_epoch_;
  // Copyset entries sorted by mapped id: the set, not its insertion order,
  // is what matters behaviorally (see header), and sorting makes renderings
  // of permuted-but-equivalent states compare equal.
  std::vector<std::tuple<std::uint32_t, const CopysetEntry*>> entries;
  entries.reserve(copyset_.size());
  for (const CopysetEntry& entry : copyset_) {
    entries.emplace_back(mapped(entry.node), &entry);
  }
  std::sort(entries.begin(), entries.end());
  os << "|cs";
  for (const auto& [id, entry] : entries) {
    os << '(' << id << ',' << mode_index(entry->mode) << ',' << entry->epoch
       << ',' << static_cast<int>(entry->freeze_sent.bits()) << ')';
  }
  // Queue order is FIFO-within-priority service order — real behavior —
  // so it is preserved verbatim.
  os << "|q";
  for (const proto::QueuedRequest& entry : queue_) {
    os << '(' << mapped(entry.requester) << ',' << mode_index(entry.mode)
       << ',' << entry.seq << ',' << static_cast<int>(entry.priority)
       << ')';
  }
  return os.str();
}

std::string HierAutomaton::describe() const {
  std::ostringstream os;
  os << to_string(self_) << " tok=" << (token_ ? 1 : 0)
     << " parent=" << to_string(parent_) << " held=" << to_string(held_)
     << " owned=" << to_string(owned()) << " pend=" << to_string(pending_)
     << (upgrading_ ? "(upg)" : "") << " frozen=" << to_string(frozen_)
     << " epoch=" << recovery_epoch_ << " q=" << queue_.size() << " cs={";
  for (std::size_t i = 0; i < copyset_.size(); ++i) {
    if (i > 0) os << ',';
    os << to_string(copyset_[i].node) << ':' << to_string(copyset_[i].mode);
  }
  os << '}';
  return os.str();
}

}  // namespace hlock::core
