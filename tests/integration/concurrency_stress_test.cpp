// Concurrent stress over the two internally synchronized building blocks
// the threaded runtime leans on hardest: trace::TraceRecorder (shared by
// receiver threads as the cluster's event sink) and transport::Mailbox
// (multi-producer delivery with close() racing pop_until()). These run in
// both the ASan/UBSan and TSan CI jobs; under TSan they double as the
// dynamic counterpart of the compile-time capability annotations
// (docs/static-analysis.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "trace/recorder.hpp"
#include "transport/mailbox.hpp"

namespace hlock {
namespace {

using namespace std::chrono_literals;

TEST(ConcurrencyStress, TraceRecorderHammeredFromManyThreads) {
  // Writers record through every convenience entry point while readers
  // render, snapshot, and histogram the live recorder.
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kPerWriter = 5000;
  static constexpr std::size_t kCapacity = 1024;  // ring-buffer eviction
  trace::TraceRecorder recorder{kCapacity};

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto events = recorder.events();
        EXPECT_LE(events.size(), kCapacity);
        std::size_t histogram_total = 0;
        for (const std::size_t n : recorder.histogram()) {
          histogram_total += n;
        }
        EXPECT_LE(histogram_total, kCapacity);
        (void)recorder.render();
        (void)recorder.truncated();
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      const proto::NodeId node{static_cast<std::uint32_t>(w)};
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(kPerWriter);
           ++i) {
        switch (i % 4) {
          case 0:
            recorder.record_enter_cs(SimTime::us(i), node);
            break;
          case 1:
            recorder.record_exit_cs(SimTime::us(i), node);
            break;
          case 2:
            recorder.record_upgrade(SimTime::us(i), node);
            break;
          default:
            recorder.note(SimTime::us(i), node, "stress");
            break;
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.events().size(), kCapacity);
  EXPECT_TRUE(recorder.truncated());
}

TEST(ConcurrencyStress, MailboxPopUntilUnderConcurrentPushAndClose) {
  // Multi-producer traffic with sub-millisecond delivery deadlines while
  // the (single) consumer alternates between deadline-bounded and blocking
  // pops, and a fourth thread closes the mailbox mid-stream. Close keeps
  // pending messages poppable and drops later pushes, so however the race
  // lands, drained == accepted.
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 4000;
  transport::Mailbox box;

  std::vector<std::thread> producers;
  std::atomic<int> producers_done{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &producers_done, p] {
      proto::Message message;
      message.from = proto::NodeId{static_cast<std::uint32_t>(p)};
      message.to = proto::NodeId{0};
      message.lock = proto::LockId{0};
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // A mix of already-due and near-future deliveries exercises both
        // the immediate-pop path and the matured-head wait path.
        const auto deliver_at =
            transport::Mailbox::Clock::now() +
            (i % 8 == 0 ? 200us : 0us);
        box.push(message, deliver_at);
      }
      producers_done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::thread closer([&box, &producers_done] {
    // Let the producers race the close: some pushes land before it (kept,
    // poppable), the rest are dropped.
    while (producers_done.load(std::memory_order_relaxed) < 1) {
      std::this_thread::yield();
    }
    box.close();
  });

  std::uint64_t drained = 0;
  for (;;) {
    auto popped =
        drained % 2 == 0
            ? box.pop_until(transport::Mailbox::Clock::now() + 1ms)
            : box.pop();
    if (popped.has_value()) {
      ++drained;
      continue;
    }
    // nullopt from pop() means closed-and-empty; pop_until may also time
    // out, so only stop once the producers and the closer are finished.
    if (producers_done.load(std::memory_order_relaxed) == kProducers) {
      if (!box.pop_until(transport::Mailbox::Clock::now() + 2ms)) break;
      ++drained;
    }
  }
  for (std::thread& producer : producers) producer.join();
  closer.join();
  while (auto popped = box.pop()) ++drained;  // anything the race left

  EXPECT_EQ(drained, box.pushed());
  EXPECT_LE(box.pushed(), kProducers * kPerProducer);
  EXPECT_GE(box.pushed(), kPerProducer);  // at least one producer landed
}

}  // namespace
}  // namespace hlock
