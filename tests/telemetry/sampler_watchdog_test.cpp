// Tests of the periodic Sampler and the runtime stall watchdog. Sleeps are
// generous multiples of the configured thresholds so the assertions hold on
// loaded CI machines.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/text_parse.hpp"
#include "telemetry/watchdog.hpp"

namespace hlock::telemetry {
namespace {

using std::chrono::milliseconds;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Sampler, DirectTickSnapshotsWithoutAThread) {
  Registry registry;
  registry.counter("hlock_test_total").inc(4);
  Sampler sampler{registry, SamplerOptions{}};
  EXPECT_EQ(sampler.tick_count(), 0u);
  EXPECT_TRUE(sampler.latest().samples.empty());

  sampler.tick();
  EXPECT_EQ(sampler.tick_count(), 1u);
  const Snapshot snap = sampler.latest();
  ASSERT_NE(snap.find("hlock_test_total"), nullptr);
  EXPECT_EQ(snap.find("hlock_test_total")->value, 4.0);
}

TEST(Sampler, SinksSeeEveryTick) {
  Registry registry;
  registry.gauge("hlock_depth").set(2.0);
  Sampler sampler{registry, SamplerOptions{}};
  std::vector<double> seen;
  sampler.add_sink([&seen](const Snapshot& snap) {
    seen.push_back(snap.find("hlock_depth")->value);
  });
  sampler.tick();
  registry.gauge("hlock_depth").set(9.0);
  sampler.tick();
  EXPECT_EQ(seen, (std::vector<double>{2.0, 9.0}));
}

TEST(Sampler, FileExportWritesParseableExposition) {
  Registry registry;
  registry.counter("hlock_test_total").inc(3);
  SamplerOptions options;
  options.out_path = "sampler_out.prom";
  Sampler sampler{registry, options};
  sampler.tick();

  const ParsedExposition parsed = parse_exposition(slurp(options.out_path));
  EXPECT_TRUE(check_exposition(parsed).empty());
  const ParsedSeries* series = parsed.find("hlock_test_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->value, 3.0);
}

TEST(Sampler, StopTakesAFinalTick) {
  Registry registry;
  Counter& counter = registry.counter("hlock_test_total");
  SamplerOptions options;
  options.interval = std::chrono::hours(1);  // never ticks on its own
  Sampler sampler{registry, options};
  sampler.start();
  counter.inc(42);
  sampler.stop();
  // The final tick must have captured the post-start increment.
  ASSERT_GE(sampler.tick_count(), 1u);
  ASSERT_NE(sampler.latest().find("hlock_test_total"), nullptr);
  EXPECT_EQ(sampler.latest().find("hlock_test_total")->value, 42.0);
  sampler.stop();  // idempotent
}

TEST(WriteFileAtomic, LeavesNoTornFilesAndReportsFailure) {
  EXPECT_TRUE(write_file_atomic("atomic_out.prom", "hello\n"));
  EXPECT_EQ(slurp("atomic_out.prom"), "hello\n");
  // Overwrite replaces wholesale.
  EXPECT_TRUE(write_file_atomic("atomic_out.prom", "world\n"));
  EXPECT_EQ(slurp("atomic_out.prom"), "world\n");
  EXPECT_FALSE(
      write_file_atomic("no_such_dir_hlock/atomic_out.prom", "x\n"));
}

WatchdogOptions fast_watchdog() {
  WatchdogOptions options;
  options.multiplier = 2.0;
  options.floor = milliseconds(5);
  options.check_interval = milliseconds(10);
  return options;
}

TEST(StallWatchdog, EndRecordsTheWaitAndClearsPending) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  const std::uint64_t key = watchdog.begin("node=0 lock=0 mode=W");
  EXPECT_EQ(registry.snapshot().find("hlock_pending_requests")->value, 1.0);
  std::this_thread::sleep_for(milliseconds(2));
  watchdog.end(key);
  watchdog.end(key);     // idempotent
  watchdog.end(999999);  // unknown keys ignored

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("hlock_pending_requests")->value, 0.0);
  const Sample* wait = snap.find("hlock_request_wait_ms");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->histogram.count, 1u);
  EXPECT_GT(wait->histogram.sum, 0.0);
  EXPECT_EQ(watchdog.stalled_total(), 0u);
}

TEST(StallWatchdog, ThresholdFallsBackToTheFloorWhenUnobserved) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  // No waits observed yet: p99 is 0, the floor rules.
  EXPECT_DOUBLE_EQ(watchdog.threshold_ms(), 5.0);
}

TEST(StallWatchdog, ThresholdTracksTheObservedP99) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  // The watchdog's histogram is a registry instrument; feed it directly.
  Histogram& wait = registry.histogram("hlock_request_wait_ms");
  for (int i = 0; i < 100; ++i) {
    wait.record(40.0);  // lands in the (25.6, 51.2] stock bucket
  }
  const double threshold = watchdog.threshold_ms();
  EXPECT_GE(threshold, 2.0 * 25.6);
  EXPECT_LE(threshold, 2.0 * 51.2);
}

TEST(StallWatchdog, CheckNowFlagsOnceAndReArmsWedgedRequests) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  std::vector<StallReport> reports;
  watchdog.set_on_stall(
      [&reports](const StallReport& report) { reports.push_back(report); });

  watchdog.begin("node=1 lock=0 mode=W");
  EXPECT_EQ(watchdog.check_now(), 0u);  // not past the 5 ms floor yet
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(watchdog.check_now(), 1u);
  EXPECT_EQ(watchdog.check_now(), 0u);  // flagged once, now re-armed out
  EXPECT_EQ(watchdog.stalled_total(), 1u);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].label, "node=1 lock=0 mode=W");
  EXPECT_GE(reports[0].waited_ms, reports[0].threshold_ms);
  EXPECT_EQ(reports[0].pending, 1u);

  // Still wedged after 2x the threshold: it reports again.
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(watchdog.check_now(), 1u);
  EXPECT_EQ(watchdog.stalled_total(), 2u);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("hlock_stalled_requests_total")->value, 2.0);
}

TEST(StallWatchdog, FinishedRequestsAreNeverFlagged) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  const std::uint64_t key = watchdog.begin("node=0 lock=0 mode=R");
  watchdog.end(key);
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(watchdog.check_now(), 0u);
  EXPECT_EQ(watchdog.stalled_total(), 0u);
}

TEST(StallWatchdog, BackgroundSweepFiresWithoutManualChecks) {
  Registry registry;
  StallWatchdog watchdog{registry, fast_watchdog()};
  watchdog.begin("node=2 lock=1 mode=W");
  watchdog.start();
  watchdog.start();  // no-op when running
  // 5 ms floor + 10 ms sweep interval: 200 ms is ample slack.
  for (int i = 0; i < 200 && watchdog.stalled_total() == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  watchdog.stop();
  EXPECT_GE(watchdog.stalled_total(), 1u);
}

}  // namespace
}  // namespace hlock::telemetry
