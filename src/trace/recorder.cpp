#include "trace/recorder.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hlock::trace {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kMessage:
      return "message";
    case EventKind::kEnterCs:
      return "enter-cs";
    case EventKind::kExitCs:
      return "exit-cs";
    case EventKind::kUpgraded:
      return "upgraded";
    case EventKind::kNote:
      return "note";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  HLOCK_REQUIRE(capacity > 0, "trace capacity must be positive");
}

void TraceRecorder::push(TraceEvent event) {
  ++total_;
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) events_.pop_front();
}

void TraceRecorder::record_message(SimTime at, const proto::Message& message) {
  push(TraceEvent{at, EventKind::kMessage, message.from,
                  to_string(message)});
}

void TraceRecorder::record_enter_cs(SimTime at, proto::NodeId node,
                                    const std::string& detail) {
  push(TraceEvent{at, EventKind::kEnterCs, node, detail});
}

void TraceRecorder::record_exit_cs(SimTime at, proto::NodeId node) {
  push(TraceEvent{at, EventKind::kExitCs, node, ""});
}

void TraceRecorder::record_upgrade(SimTime at, proto::NodeId node) {
  push(TraceEvent{at, EventKind::kUpgraded, node, ""});
}

void TraceRecorder::note(SimTime at, proto::NodeId node,
                         const std::string& text) {
  push(TraceEvent{at, EventKind::kNote, node, text});
}

void TraceRecorder::clear() {
  events_.clear();
  total_ = 0;
}

std::string TraceRecorder::render(proto::NodeId node_filter) const {
  std::ostringstream os;
  if (truncated()) {
    os << "... (" << total_ - events_.size() << " earlier events dropped)\n";
  }
  for (const TraceEvent& event : events_) {
    if (!node_filter.is_none()) {
      bool relevant = event.node == node_filter;
      if (event.kind == EventKind::kMessage &&
          event.detail.find(to_string(node_filter)) != std::string::npos) {
        relevant = true;
      }
      if (!relevant) continue;
    }
    char head[64];
    std::snprintf(head, sizeof head, "%12s  %-7s %-9s ",
                  to_string(event.at).c_str(),
                  to_string(event.node).c_str(),
                  to_string(event.kind).c_str());
    os << head << event.detail << '\n';
  }
  return os.str();
}

std::vector<std::size_t> TraceRecorder::histogram() const {
  std::vector<std::size_t> counts(5, 0);
  for (const TraceEvent& event : events_) {
    ++counts[static_cast<std::size_t>(event.kind)];
  }
  return counts;
}

}  // namespace hlock::trace
