#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hlock::stats {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  HLOCK_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be within [0, 1]");
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(var / static_cast<double>(s.count - 1))
                 : 0.0;
  s.p50 = quantile_sorted(sorted, 0.50);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  s.p999 = quantile_sorted(sorted, 0.999);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " p50=" << s.p50
     << " p90=" << s.p90 << " p95=" << s.p95 << " p99=" << s.p99
     << " p999=" << s.p999 << " max=" << s.max;
  return os.str();
}

}  // namespace hlock::stats
