#include "proto/message.hpp"

#include <sstream>

namespace hlock::proto {

MessageKind kind_of(const Payload& payload) {
  return static_cast<MessageKind>(payload.index());
}

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHierRequest:
      return "REQUEST";
    case MessageKind::kHierGrant:
      return "GRANT";
    case MessageKind::kHierToken:
      return "TOKEN";
    case MessageKind::kHierRelease:
      return "RELEASE";
    case MessageKind::kHierFreeze:
      return "FREEZE";
    case MessageKind::kNaimiRequest:
      return "NREQUEST";
    case MessageKind::kNaimiToken:
      return "NTOKEN";
    case MessageKind::kHeartbeat:
      return "HEARTBEAT";
    case MessageKind::kSuspect:
      return "SUSPECT";
    case MessageKind::kElectToken:
      return "ELECT";
    case MessageKind::kEpochFence:
      return "FENCE";
  }
  return "?";
}

namespace {
struct PayloadPrinter {
  std::ostringstream& os;

  void operator()(const HierRequest& p) const {
    os << "REQUEST(" << to_string(p.requester) << ", " << to_string(p.mode)
       << ", seq=" << p.seq;
    if (p.priority != 0) os << ", prio=" << static_cast<int>(p.priority);
    os << ")";
  }
  void operator()(const HierGrant& p) const {
    os << "GRANT(" << to_string(p.mode) << ", entry=" << to_string(p.entry_mode)
       << ", epoch=" << p.epoch << ")";
  }
  void operator()(const HierToken& p) const {
    os << "TOKEN(" << to_string(p.granted_mode)
       << ", sender_owned=" << to_string(p.sender_owned)
       << ", queued=" << p.queue.size() << ")";
  }
  void operator()(const HierRelease& p) const {
    os << "RELEASE(" << to_string(p.new_owned) << ", epoch=" << p.epoch
       << ")";
  }
  void operator()(const HierFreeze& p) const {
    os << "FREEZE(" << to_string(p.modes) << ")";
  }
  void operator()(const NaimiRequest& p) const {
    os << "NREQUEST(" << to_string(p.requester) << ", seq=" << p.seq << ")";
  }
  void operator()(const NaimiToken&) const { os << "NTOKEN"; }
  void operator()(const Heartbeat&) const { os << "HEARTBEAT"; }
  void operator()(const Suspect& p) const {
    os << "SUSPECT(" << to_string(p.dead) << ")";
  }
  void operator()(const ElectToken& p) const {
    os << "ELECT(dead=" << p.dead.size() << ", " << p.lock_index + 1 << "/"
       << p.lock_count << ", epoch=" << p.epoch
       << ", token=" << (p.has_token ? 1 : 0) << ", held=" << to_string(p.held)
       << (p.waiting ? ", waiting" : "") << (p.upgrading ? ", upgrading" : "")
       << ")";
  }
  void operator()(const EpochFence& p) const {
    os << "FENCE(epoch=" << p.epoch << ", root=" << to_string(p.new_root)
       << ", dead=" << p.dead.size() << ", holders=" << p.holders.size()
       << ", queued=" << p.queue.size() << ", " << p.fence_index + 1 << "/"
       << p.fence_count << ")";
  }
};
}  // namespace

std::string to_string(const Message& m) {
  std::ostringstream os;
  os << to_string(m.from) << "->" << to_string(m.to) << ' '
     << to_string(m.lock) << ' ';
  std::visit(PayloadPrinter{os}, m.payload);
  return os.str();
}

}  // namespace hlock::proto
