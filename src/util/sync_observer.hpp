// Runtime hook layer under the annotated sync primitives (util/sync.hpp).
//
// The compile-time capability annotations prove lock *discipline*; this
// header makes lock *behavior* observable and controllable at runtime. A
// single process-global SyncObserver can be installed; when one is, every
// hlock::Mutex / hlock::CondVar operation reports to it (and may delegate
// the blocking part of the operation to it). Two observers live in
// src/sched/ on top of this hook:
//
//   * sched::Lockdep — a lock-order recorder that flags *potential*
//     deadlocks (lock inversions) even when no deadlock manifests, and
//   * sched::Explorer — a PCT-style deterministic schedule explorer that
//     serializes threads at sync points under a seeded random-priority
//     scheduler, so rare interleavings become reproducible test inputs.
//
// Cost when no observer is installed: one relaxed atomic load per
// operation, nothing else — the PR 5 hot path is untouched (the bench-smoke
// gate runs with the slot empty). See docs/sched.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <source_location>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace hlock::sched {

/// Identity of one sync object: the instance plus its construction site.
/// The site (file:line, or the explicit name when given) is the lockdep
/// *class* — every Shard::mutex collapses into one class, so an ordering
/// learned on one shard instance applies to all of them.
struct SyncId {
  const void* object = nullptr;  ///< the Mutex / CondVar instance
  const char* file = "";         ///< construction-site file
  unsigned line = 0;             ///< construction-site line
  const char* name = nullptr;    ///< optional explicit name (overrides site)
};

/// An observer may throw this out of a sync operation to tear a schedule
/// down; sched::Thread bodies swallow it. (The stock Explorer does not
/// throw: a proven deadlock cannot be unwound, so it reports and exits
/// the process — see sched/explorer.hpp.)
class ScheduleAborted : public std::runtime_error {
 public:
  explicit ScheduleAborted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Process-global hook called by hlock::Mutex / hlock::CondVar (and the
/// sched::Thread / BlockingRegion helpers below). All default
/// implementations observe nothing and delegate nothing, so an observer
/// only overrides what it needs. Hooks may be called concurrently from any
/// thread; implementations synchronize internally and must never touch
/// hlock primitives themselves (plain std::mutex only — the hooks would
/// recurse).
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  // -- Mutex hooks ---------------------------------------------------------

  /// About to acquire `id` (called before any blocking). Lockdep records
  /// its acquisition-order edges here, so an inversion is reported even if
  /// the acquire then blocks forever.
  virtual void acquiring(const SyncId& id) { (void)id; }

  /// May perform the entire (blocking) acquisition of `mu` itself and
  /// return true; returning false tells the caller to run mu.lock(). The
  /// explorer acquires via try_lock under its scheduler so a blocked
  /// thread is visible (and preemptible) instead of opaque.
  virtual bool acquire(const SyncId& id, std::mutex& mu) {
    (void)id;
    (void)mu;
    return false;
  }

  /// Non-blocking acquisition attempt; returns the try_lock result. The
  /// default just forwards. On success the caller reports acquired().
  virtual bool try_acquire(const SyncId& id, std::mutex& mu) {
    (void)id;
    return mu.try_lock();
  }

  /// The lock on `id` is now held by the calling thread (any path).
  virtual void acquired(const SyncId& id) { (void)id; }

  /// The calling thread released the lock on `id` (called after the real
  /// unlock, so a woken waiter's retry can succeed immediately).
  virtual void released(const SyncId& id) { (void)id; }

  // -- CondVar hooks -------------------------------------------------------

  /// May perform an entire wait (unlock `mu`, block until notified, relock
  /// `mu`) and return true; false = caller runs the real wait. `cv`
  /// identifies the condition variable, `mu_id` the mutex held across the
  /// call. Spurious wake-ups are allowed — every call site loops on its
  /// predicate (see util/sync.hpp).
  virtual bool wait(const SyncId& cv, const SyncId& mu_id, std::mutex& mu) {
    (void)cv;
    (void)mu_id;
    (void)mu;
    return false;
  }

  /// Timed-wait form of wait(); on handling it stores the outcome in
  /// `*status`. Under the explorer a timed waiter self-wakes on its real
  /// deadline, so timeout paths are explored and a pending deadline is
  /// never mistaken for a deadlock.
  virtual bool wait_until(const SyncId& cv, const SyncId& mu_id,
                          std::mutex& mu,
                          std::chrono::steady_clock::time_point deadline,
                          std::cv_status* status) {
    (void)cv;
    (void)mu_id;
    (void)mu;
    (void)deadline;
    (void)status;
    return false;
  }

  /// notify_one (all=false) / notify_all (all=true) on `cv`. The real
  /// notification has already been issued when this runs.
  virtual void notify(const SyncId& cv, bool all) {
    (void)cv;
    (void)all;
  }

  // -- Explicit schedule points -------------------------------------------

  /// An explicit sched::yield_point(`site`) — a preemption opportunity
  /// between lock operations.
  virtual void yield(const char* site) { (void)site; }

  // -- Thread lifecycle (sched::Thread) ------------------------------------

  /// Called on the *parent* thread before a sched::Thread starts; the
  /// returned handle is passed to the started/finished hooks on the child.
  /// Registering the child here (not at its first sync point) makes the
  /// participant set — and therefore the schedule — deterministic.
  virtual void* thread_spawning(const char* name) {
    (void)name;
    return nullptr;
  }

  /// Called first thing on the child thread (blocks until scheduled under
  /// the explorer).
  virtual void thread_started(void* handle) { (void)handle; }

  /// Called when the child body returns (or aborts).
  virtual void thread_finished(void* handle) { (void)handle; }

  /// A controlled thread is about to join `handle`'s thread. The explorer
  /// parks the caller until the target finishes, so a join between
  /// controlled threads is a *visible* wait that participates in deadlock
  /// detection — bracketing the join in an opaque BlockingRegion instead
  /// would look like a potential unblocker and mask every deadlock among
  /// the remaining threads.
  virtual void thread_joining(void* handle) { (void)handle; }

  // -- Blocking regions ----------------------------------------------------

  /// The calling thread is about to block outside observable sync (socket
  /// accept/read/write, thread join, real sleeps). The explorer releases
  /// the thread from its scheduler for the duration so the region cannot
  /// stall the schedule. Returns an opaque token for the matching exit.
  virtual void* blocking_region_enter() { return nullptr; }
  virtual void blocking_region_exit(void* token) { (void)token; }
};

/// The installed observer; nullptr almost always. Relaxed is enough: an
/// installation only promises to observe operations that start after it.
inline std::atomic<SyncObserver*> g_sync_observer{nullptr};

/// The hook read on every sync operation.
inline SyncObserver* sync_observer() {
  return g_sync_observer.load(std::memory_order_relaxed);
}

/// Installs `observer` (nullptr uninstalls) and returns the previous one.
/// Callers own both lifetimes; an observer must outlive every thread that
/// can still hit a hook.
inline SyncObserver* exchange_sync_observer(SyncObserver* observer) {
  return g_sync_observer.exchange(observer, std::memory_order_acq_rel);
}

/// An explicit schedule point: under the explorer, a place where the
/// scheduler may preempt the thread between lock operations. Free when no
/// observer is installed (one relaxed load).
inline void yield_point(const char* site = "") {
  if (SyncObserver* obs = sync_observer(); obs != nullptr) [[unlikely]] {
    obs->yield(site);
  }
}

/// RAII bracket around operations that block outside the sync layer. See
/// SyncObserver::blocking_region_enter.
class BlockingRegion {
 public:
  BlockingRegion() {
    if (SyncObserver* obs = sync_observer(); obs != nullptr) [[unlikely]] {
      obs_ = obs;
      token_ = obs->blocking_region_enter();
    }
  }
  ~BlockingRegion() {
    if (token_ != nullptr) obs_->blocking_region_exit(token_);
  }
  BlockingRegion(const BlockingRegion&) = delete;
  BlockingRegion& operator=(const BlockingRegion&) = delete;

 private:
  SyncObserver* obs_ = nullptr;
  void* token_ = nullptr;
};

/// A std::thread whose lifecycle the installed observer sees: the child is
/// registered from the parent (deterministic participant order), announces
/// start/finish, swallows ScheduleAborted (an aborted schedule must not
/// std::terminate), and reports joins via thread_joining so a join is a
/// schedulable wait rather than an opaque block. Without an observer this
/// is an ordinary std::thread.
class Thread {
 public:
  Thread() = default;

  template <typename Fn>
  explicit Thread(const char* name, Fn&& fn) {
    SyncObserver* obs = sync_observer();
    void* handle = obs != nullptr ? obs->thread_spawning(name) : nullptr;
    observer_ = obs;
    handle_ = handle;
    thread_ = std::thread(
        [obs, handle, body = std::forward<Fn>(fn)]() mutable {
          if (handle != nullptr) obs->thread_started(handle);
          try {
            body();
          } catch (const ScheduleAborted&) {
            // The explorer tore the schedule down (deadlock found); the
            // verdict lives on the explorer, not in this thread.
          }
          if (handle != nullptr) obs->thread_finished(handle);
        });
  }

  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const { return thread_.joinable(); }

  void join() {
    // Announce the join to the spawn-time observer first: the explorer
    // parks this thread until the target finishes. The real join after
    // that completes on its own (the target is past its last sync op), so
    // the brief residual block happens in an ordinary blocking region.
    if (observer_ != nullptr && handle_ != nullptr) {
      observer_->thread_joining(handle_);
    }
    BlockingRegion region;
    thread_.join();
  }

  ~Thread() {
    // Mirror std::thread: destroying a joinable thread is a bug.
    if (thread_.joinable()) std::terminate();
  }

 private:
  std::thread thread_;
  /// Observer and handle captured at spawn, so join() reports to the same
  /// observer that registered the thread.
  SyncObserver* observer_ = nullptr;
  void* handle_ = nullptr;
};

}  // namespace hlock::sched
