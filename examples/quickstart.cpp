// Quickstart: a five-node hierarchical lock cluster on real threads.
//
// Demonstrates the core public API: build a ThreadCluster, acquire the same
// lock in compatible modes from several nodes concurrently, upgrade a U
// lock to W, and observe that writes serialize against everything else.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "proto/lock_mode.hpp"
#include "runtime/thread_cluster.hpp"

using hlock::proto::LockId;
using hlock::proto::LockMode;
using hlock::proto::NodeId;
using hlock::runtime::Protocol;
using hlock::runtime::ThreadCluster;
using hlock::runtime::ThreadClusterOptions;

int main() {
  ThreadClusterOptions options;
  options.node_count = 5;
  options.protocol = Protocol::kHierarchical;
  ThreadCluster cluster{options};

  const LockId account_table{0};

  // 1. Concurrent readers: IR/R are compatible, so all of these proceed in
  //    parallel (most grants need no messages at all once the copyset
  //    forms).
  std::printf("== concurrent readers ==\n");
  {
    std::vector<std::thread> readers;
    for (std::uint32_t i = 0; i < 5; ++i) {
      readers.emplace_back([&cluster, i, account_table] {
        const NodeId node{i};
        cluster.lock(node, account_table, LockMode::kIR);
        std::printf("node%u holds IR\n", i);
        cluster.unlock(node, account_table);
      });
    }
    for (std::thread& t : readers) t.join();
  }

  // 2. Read-modify-write with an upgrade lock: U gives exclusive read
  //    access and upgrades to W atomically (Rule 7) — no other writer can
  //    sneak between the read and the write.
  std::printf("== upgrade lock ==\n");
  cluster.lock(NodeId{2}, account_table, LockMode::kU);
  std::printf("node2 read the balance under U\n");
  cluster.upgrade(NodeId{2}, account_table);
  std::printf("node2 upgraded to W and wrote the new balance\n");
  cluster.unlock(NodeId{2}, account_table);

  // 3. A writer excludes everyone; a reader queued behind it waits.
  std::printf("== exclusive writer ==\n");
  cluster.lock(NodeId{0}, account_table, LockMode::kW);
  std::thread reader([&cluster, account_table] {
    cluster.lock(NodeId{4}, account_table, LockMode::kR);
    std::printf("node4 acquired R after the writer released\n");
    cluster.unlock(NodeId{4}, account_table);
  });
  std::printf("node0 holds W; releasing...\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cluster.unlock(NodeId{0}, account_table);
  reader.join();

  std::printf("done; %llu protocol messages were exchanged\n",
              static_cast<unsigned long long>(cluster.messages_sent()));
  return 0;
}
