// Symmetry canonicalization support for the model checker.
//
// A scripted configuration is invariant under any permutation of node ids
// that maps every node to a node running a byte-identical script: the
// automatons are symmetric (ids appear only in routing state), so
// relabeling a reachable state by such a permutation yields a behaviorally
// equivalent state, and a state violates a property iff its image does.
// Node 0 needs no special treatment — its initial distinction (token
// placement, parent links pointing at it) is ordinary state that gets
// relabeled along with everything else, and two states whose RELABELED
// renderings coincide have identical futures regardless of how either was
// reached. The
// explorer exploits this by fingerprinting states canonically: render the
// state under every group element and keep the lexicographic minimum, so
// orbit-equivalent states deduplicate to one representative.
//
// Soundness of merging: two states sharing a canonical form are images of
// each other under a group element (min-renderings rho1(s) == rho2(s')
// imply s' = rho2^-1 rho1 (s), and the group is closed under composition
// and inverse), hence behaviorally identical up to renaming. Using only a
// SUBSET of the group (the generator caps enumeration) merges fewer states
// but never merges wrongly, so truncation stays sound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "proto/message.hpp"

namespace hlock::modelcheck {

/// The node-id permutation group of one scripted configuration; see file
/// comment. perms()[k][i] is the image of node i under element k; element 0
/// is always the identity.
class SymmetryGroup {
 public:
  /// Identity-only group (no symmetry).
  SymmetryGroup() = default;

  /// Builds the group for `classes`, where classes[i] labels node i's
  /// script (equal labels = interchangeable nodes, node 0 included).
  /// Enumeration stops at `max_perms` elements:
  /// beyond the cap the group degrades to identity-only (truncated()),
  /// which loses reduction but not soundness.
  static SymmetryGroup from_classes(const std::vector<std::size_t>& classes,
                                    std::size_t max_perms = 40320);

  /// True when only the identity is available (nothing to canonicalize).
  bool trivial() const { return perms_.size() <= 1; }

  /// True when the full group exceeded the enumeration cap and was dropped.
  bool truncated() const { return truncated_; }

  const std::vector<std::vector<std::uint32_t>>& perms() const {
    return perms_;
  }

 private:
  std::vector<std::vector<std::uint32_t>> perms_;
  bool truncated_ = false;
};

/// `m` with every embedded NodeId (envelope from/to, request origin,
/// requester fields, token queue entries) mapped through `map`; none()
/// sentinels and ids beyond the map pass through. FIFO orders inside the
/// message are preserved — only labels change.
proto::Message remap_message(const proto::Message& m,
                             const std::vector<std::uint32_t>& map);

}  // namespace hlock::modelcheck
