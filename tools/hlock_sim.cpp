// hlock_sim — parameterized experiment runner.
//
// Runs one airline-workload experiment on the simulated cluster with every
// knob on the command line, printing a one-line summary or CSV. This is the
// tool for exploring the parameter space beyond the fixed figure sweeps:
//
//   hlock_sim --protocol hier --nodes 64 --ratio 10 --net-latency-us 150
//   hlock_sim --protocol naimi-same-work --nodes 24 --entries 8 --csv
//   hlock_sim --protocol hier --nodes 32 --no-freezing --seeds 5
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "stats/histogram.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

namespace {

AppVariant parse_variant(const std::string& name) {
  if (name == "hier" || name == "hierarchical") {
    return AppVariant::kHierarchical;
  }
  if (name == "naimi-pure") return AppVariant::kNaimiPure;
  if (name == "naimi-same-work") return AppVariant::kNaimiSameWork;
  throw UsageError("--protocol must be hier, naimi-pure or naimi-same-work");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_sim",
                "run one hlock experiment on the simulated cluster"};
  cli.add_option("protocol", "hier",
                 "hier | naimi-pure | naimi-same-work");
  cli.add_option("nodes", "16", "number of cluster nodes (1-4096)");
  cli.add_option("ops", "60", "operations per node");
  cli.add_option("entries", "6", "ticket-table entries");
  cli.add_option("cs-ms", "15", "mean critical-section length, ms");
  cli.add_option("ratio", "10",
                 "non-critical : critical ratio (idle = ratio x cs)");
  cli.add_option("net-latency-us", "150",
                 "mean one-way network latency, microseconds");
  cli.add_option("seed", "1", "base random seed");
  cli.add_option("seeds", "1", "number of seeds to average over");
  cli.add_flag("no-local-queueing", "disable Rule 4.1 local queueing");
  cli.add_flag("no-child-grants", "disable Rule 3.1 copyset grants");
  cli.add_flag("no-compression", "disable dynamic path compression");
  cli.add_flag("no-freezing", "disable Rule 6 mode freezing");
  cli.add_flag("csv", "print a CSV row (with header) instead of text");
  cli.add_option("histogram", "0",
                 "print a latency histogram with this many buckets");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }

    ExperimentConfig config;
    config.variant = parse_variant(cli.get_string("protocol"));
    config.nodes = static_cast<std::size_t>(cli.get_int("nodes", 1, 4096));
    config.ops_per_node = static_cast<int>(cli.get_int("ops", 0, 1000000));
    config.table_entries =
        static_cast<std::size_t>(cli.get_int("entries", 1, 1024));
    const std::int64_t cs_ms = cli.get_int("cs-ms", 0, 1000000);
    const double ratio = cli.get_double("ratio", 0.0, 1e6);
    config.cs_length = DurationDist::uniform(SimTime::ms(cs_ms), 0.5);
    config.idle_time = DurationDist::uniform(
        SimTime::ms_f(static_cast<double>(cs_ms) * ratio), 0.5);
    config.net_latency = DurationDist::uniform(
        SimTime::us(cli.get_int("net-latency-us", 0, 100000000)), 0.5);
    config.seed = static_cast<std::uint64_t>(
        cli.get_int("seed", 0, std::numeric_limits<std::int64_t>::max()));
    config.hier_config.local_queueing = !cli.get_flag("no-local-queueing");
    config.hier_config.child_grants = !cli.get_flag("no-child-grants");
    config.hier_config.path_compression = !cli.get_flag("no-compression");
    config.hier_config.freezing = !cli.get_flag("no-freezing");

    const int seeds = static_cast<int>(cli.get_int("seeds", 1, 1000));
    const ExperimentResult result = bench::run_averaged(config, seeds);

    if (cli.get_flag("csv")) {
      std::printf("protocol,nodes,ops,msgs_per_request,msgs_per_op,"
                  "mean_request_latency_ms,mean_op_latency_ms,"
                  "p90_op_latency_ms,max_op_latency_ms\n");
      std::printf("%s,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                  bench::series_name(config.variant).c_str(), config.nodes,
                  static_cast<unsigned long long>(result.ops),
                  result.msgs_per_acq, result.msgs_per_op,
                  result.mean_request_latency_ms, result.mean_latency_ms,
                  result.p90_latency_ms, result.max_latency_ms);
    } else {
      std::printf("%s, %zu nodes, %llu ops (%llu lock requests, %llu "
                  "messages)\n",
                  bench::series_name(config.variant).c_str(), config.nodes,
                  static_cast<unsigned long long>(result.ops),
                  static_cast<unsigned long long>(result.acquisitions),
                  static_cast<unsigned long long>(result.messages));
      std::printf("  messages/request : %.2f   (messages/op: %.2f)\n",
                  result.msgs_per_acq, result.msgs_per_op);
      std::printf("  request latency  : mean %.3f ms\n",
                  result.mean_request_latency_ms);
      std::printf("  op latency       : mean %.3f ms, p90 %.3f ms, max "
                  "%.3f ms\n",
                  result.mean_latency_ms, result.p90_latency_ms,
                  result.max_latency_ms);
    }
    const auto buckets =
        static_cast<std::size_t>(cli.get_int("histogram", 0, 64));
    if (buckets > 0) {
      stats::HistogramOptions histogram;
      histogram.buckets = buckets;
      histogram.log_scale = true;
      std::printf("\nrequest latency distribution:\n%s",
                  stats::render_histogram(result.request_latency_samples_ms,
                                          histogram)
                      .c_str());
    }
    return 0;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
