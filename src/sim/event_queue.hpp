// Pending-event set of the discrete-event simulator.
//
// A binary min-heap ordered by (time, insertion sequence). The sequence
// tie-break makes event ordering total and deterministic: two events
// scheduled for the same instant always fire in scheduling order, so a run
// is a pure function of (workload, seed) — the property every reproduction
// experiment in this repository rests on.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace hlock::sim {

/// One scheduled event: an opaque action to run at a simulated instant.
struct Event {
  SimTime at;
  std::uint64_t seq = 0;
  std::function<void()> action;
};

/// Min-heap of events keyed by (at, seq). Not thread-safe; the simulator is
/// single-threaded by design.
class EventQueue {
 public:
  /// Inserts an action at time `at`; earlier-scheduled actions at the same
  /// instant run first. Returns the event's sequence number.
  std::uint64_t push(SimTime at, std::function<void()> action);

  /// True if no events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  SimTime next_time() const;

  /// Removes and returns the earliest pending event. Precondition: !empty().
  Event pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> action;
  };
  /// True if a fires after b (max-heap comparator inverted to a min-heap).
  static bool later(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hlock::sim
