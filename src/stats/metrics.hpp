// Experiment metrics: message counts and request latencies.
//
// The paper's two headline metrics are (1) the average number of protocol
// messages per application-level lock request and (2) the request latency —
// "the time elapsed between issuing a request and entering the critical
// section". MetricsRegistry collects both across a run; harnesses read one
// registry per simulated cluster.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "proto/message.hpp"
#include "stats/summary.hpp"
#include "util/sim_time.hpp"

namespace hlock::stats {

/// Message counts broken down by protocol message kind.
class MessageCounter {
 public:
  /// Counts one sent message.
  void add(proto::MessageKind kind);

  /// Messages of one kind.
  std::uint64_t count(proto::MessageKind kind) const;

  /// All messages.
  std::uint64_t total() const;

 private:
  std::array<std::uint64_t, proto::kMessageKindCount> counts_{};
};

/// Latency samples of completed application-level requests.
class LatencyRecorder {
 public:
  /// Records one completed request's latency.
  void record(SimTime latency);

  /// Number of recorded requests.
  std::size_t count() const { return samples_ms_.size(); }

  /// Latency samples in milliseconds, in completion order.
  const std::vector<double>& samples_ms() const { return samples_ms_; }

  /// Exact summary over all samples (milliseconds).
  Summary summarize() const { return stats::summarize(samples_ms_); }

 private:
  std::vector<double> samples_ms_;
};

/// Everything one experiment run collects.
class MetricsRegistry {
 public:
  MessageCounter& messages() { return messages_; }
  const MessageCounter& messages() const { return messages_; }

  LatencyRecorder& latency() { return latency_; }
  const LatencyRecorder& latency() const { return latency_; }

  /// Messages per completed application-level request — the paper's
  /// Fig. 7/9 metric. Zero when no request completed.
  double messages_per_request() const;

 private:
  MessageCounter messages_;
  LatencyRecorder latency_;
};

}  // namespace hlock::stats
