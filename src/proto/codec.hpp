// Binary wire codec for protocol messages.
//
// The in-process transports could pass Message structs by value, but a real
// deployment ships bytes; encoding through this codec keeps the protocol
// honest about what information actually crosses the network (the threaded
// transport round-trips every message through it by default). The format is
// a fixed little-endian layout with a length-prefixed queue section — no
// pointers, no padding, portable across platforms. A leading version byte
// rejects frames from incompatible peers; version 2 added the per-request
// causal id and the Lamport timestamp to the envelope (src/obs).
//
// Hot-path API: encode() allocates a fresh buffer per call, which is the
// convenient form for tests and one-off frames. Transports on the hot path
// use encode_into() with a caller-owned scratch buffer that amortizes the
// allocation across messages, and the batch envelope (encode_batch_into /
// decode_batch) that coalesces every same-destination message of one
// automaton step into a single framed unit — see docs/performance.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/message.hpp"

namespace hlock::proto {

/// Wire format version, the first byte of every encoded message. Bumped to
/// 2 when the envelope grew the RequestId and Lamport fields; bumped to 3
/// when it grew the recovery epoch (and the recovery message kinds —
/// docs/recovery.md). decode() rejects every other version.
inline constexpr std::uint8_t kWireFormatVersion = 3;

/// First byte of a batch envelope (encode_batch_into). Deliberately far
/// from any plausible version byte so a receiver can tell a batch frame
/// from a single-message frame by its first byte alone.
inline constexpr std::uint8_t kBatchMarker = 0xB5;

/// Hard cap on HierToken queue entries, enforced on both sides of the wire:
/// encode() rejects messages above it (a queue that large indicates state
/// corruption — a cluster has at most one queued request per node) and
/// decode() rejects counts above it before reserving memory, so a corrupt
/// or hostile frame can never drive a huge allocation.
inline constexpr std::size_t kMaxTokenQueueEntries = 1u << 16;

/// Hard cap on messages per batch envelope, decode-side companion of
/// kMaxTokenQueueEntries for the batch count field.
inline constexpr std::size_t kMaxBatchMessages = 1u << 16;

/// Hard cap on node-list entries (ElectToken/EpochFence dead sets, fence
/// holder lists), decode-side companion of kMaxTokenQueueEntries.
inline constexpr std::size_t kMaxFenceNodes = 1u << 16;

/// Smallest possible single-message encoding (a NaimiToken: version byte,
/// envelope, empty payload); used to reject impossible batch counts before
/// allocating.
inline constexpr std::size_t kMinEncodedMessageBytes = 38;

/// Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void node(NodeId id);
  void lock(LockId id);
  void mode(LockMode m);

  /// Overwrites a previously written u32 at byte offset `at` (backpatching
  /// length prefixes without a second encoding pass).
  void patch_u32(std::size_t at, std::uint32_t v);

  /// Bytes written to the underlying buffer so far.
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Consumes little-endian primitives from a byte span. All read methods
/// return std::nullopt once the input is exhausted or malformed; decoding
/// never throws on bad input (a hostile or truncated packet must not crash
/// a lock server).
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> in) : in_(in) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<NodeId> node();
  std::optional<LockId> lock();
  std::optional<LockMode> mode();

  /// Consumes the next `size` bytes as a subspan; std::nullopt if fewer
  /// remain.
  std::optional<std::span<const std::byte>> bytes(std::size_t size);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Serializes a message; the result is self-contained (no framing needed
/// beyond the byte count). Throws UsageError for messages that exceed the
/// wire format's limits (a HierToken queue above kMaxTokenQueueEntries).
std::vector<std::byte> encode(const Message& m);

/// Appends the encoding of `m` to `out` without clearing it — the reusable
/// zero-allocation form of encode() (callers clear() and reuse one scratch
/// buffer across messages; the buffer's capacity persists).
void encode_into(const Message& m, std::vector<std::byte>& out);

/// Parses a message previously produced by encode(). Returns std::nullopt
/// for truncated or corrupt input, including trailing garbage.
std::optional<Message> decode(std::span<const std::byte> bytes);

/// Appends a batch envelope carrying all of `messages` to `out`:
/// kBatchMarker, a u32 count, then one length-prefixed single-message
/// encoding per message. The result is self-contained like encode()'s.
/// Throws UsageError when `messages` exceeds kMaxBatchMessages.
void encode_batch_into(std::span<const Message> messages,
                       std::vector<std::byte>& out);

/// Parses a batch envelope previously produced by encode_batch_into().
/// Returns std::nullopt for anything else: truncated or corrupt input,
/// trailing garbage, counts or lengths the buffer cannot hold.
std::optional<std::vector<Message>> decode_batch(
    std::span<const std::byte> bytes);

/// True if `bytes` starts like a batch envelope (first byte kBatchMarker);
/// receivers use it to route a frame to decode() or decode_batch().
inline bool is_batch_frame(std::span<const std::byte> bytes) {
  return !bytes.empty() &&
         std::to_integer<std::uint8_t>(bytes.front()) == kBatchMarker;
}

}  // namespace hlock::proto
