// PCT-style deterministic schedule explorer over the SyncObserver hook.
//
// TSan and stress loops only catch the interleavings a run happens to hit.
// This explorer makes thread schedules an *input*: while installed, every
// participating thread is serialized at its sync points (mutex acquire /
// release, condvar wait / notify, explicit sched::yield_point()s) under a
// seeded random-priority scheduler in the spirit of PCT (Burckhardt et
// al., "A Randomized Scheduler with Probabilistic Guarantees of Finding
// Bugs"): each thread carries a random priority, the highest-priority
// runnable thread runs until it blocks or a seeded priority-change point
// demotes it. Exploring N seeds walks N qualitatively different
// interleavings; replaying a seed reproduces its interleaving exactly
// (for schedules whose only nondeterminism is the scheduler — real
// sockets and real-time faults stay seeded but best-effort).
//
// Blocking is cooperative: mutexes are acquired with try_lock under the
// scheduler so a blocked thread is visible and preemptible; condvar waits
// park the thread in the scheduler until a notify wakes it (timed waits
// additionally self-wake on their real deadline, so timeout paths are
// explored without the scheduler ever declaring them dead). Operations
// that block outside the sync layer (socket calls, joins) are bracketed
// in sched::BlockingRegion so they cannot stall the schedule.
//
// When every participating thread is blocked on a mutex or an untimed
// condvar wait — no deadline and no external region can unblock one — the
// explorer has *found a deadlock*. A deadlocked process cannot be unwound
// (threads are parked inside locked destructors and waits), so the
// explorer prints a report naming each thread's held locks and wait
// object plus the replay seed, and exits with kSchedDeadlockExit. The
// SchedTest harness and `hlock_sim --sched-seeds` therefore run each seed
// in a forked subprocess and classify the exit status. The embedded
// Lockdep instance additionally flags lock-order inversions that never
// deadlock.
//
// See docs/sched.md; the SchedTest harness (tests/sched/sched_test.hpp)
// and `hlock_sim --sched-seeds` drive seeds through this class.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/lockdep.hpp"
#include "util/rng.hpp"
#include "util/sync_observer.hpp"

namespace hlock::sched {

/// Process exit status when the explorer proves the schedule deadlocked.
inline constexpr int kSchedDeadlockExit = 86;
/// Process exit status when a schedule exceeds its decision budget
/// (livelock, or a genuinely enormous schedule — raise max_steps).
inline constexpr int kSchedBudgetExit = 87;

/// Construction parameters of one exploration run.
struct ExplorerOptions {
  /// Seeds thread priorities, priority-change points, and every other
  /// scheduling choice. Same seed + same program = same schedule.
  std::uint64_t seed = 1;
  /// Mean number of scheduling decisions between priority-change points
  /// (the "d" knob of PCT, expressed as a rate). 0 disables changes.
  std::uint32_t change_interval = 12;
  /// Also run the embedded lock-order recorder (reports inversions that
  /// never manifest as deadlocks).
  bool lockdep = true;
  /// Scheduling-decision budget; exceeding it exits with kSchedBudgetExit
  /// (a wedged-but-spinning schedule must not hang the harness).
  std::uint64_t max_steps = 2'000'000;
};

/// See file comment. One Explorer = one schedule; construct a fresh one
/// per seed. Install via run() (which brackets install/uninstall), not by
/// hand.
class Explorer final : public SyncObserver {
 public:
  explicit Explorer(const ExplorerOptions& options);
  ~Explorer() override;

  /// Installs this explorer as the global observer, registers the calling
  /// thread as a participant, runs `body`, then deregisters and
  /// uninstalls (restoring the previous observer). `body` must join every
  /// sched::Thread it (transitively) spawns before returning. On a
  /// detected deadlock the process exits (see file comment) — run() only
  /// returns for schedules that complete.
  void run(const std::function<void()>& body);

  /// True once the scheduler proved every participant blocked with no
  /// wake-up source. Only observable in-process if something inspects the
  /// explorer from the deadlock report callback path; normally the
  /// subprocess exit code carries the verdict.
  bool deadlock_found() const;

  /// Human-readable deadlock report (empty without one).
  std::string report() const;

  /// The retained tail of the schedule, one line per scheduling decision
  /// ("#step thread op"), for failure dumps. Bounded: very long schedules
  /// keep only the most recent lines (the fingerprint still covers all).
  std::vector<std::string> schedule() const;

  /// Running FNV-1a hash over every scheduling decision — two runs of the
  /// same seed over the same body must produce equal fingerprints.
  std::uint64_t schedule_fingerprint() const;

  /// Scheduling decisions taken so far.
  std::uint64_t steps() const;

  /// The embedded lock-order recorder (violation_count() etc.), or
  /// nullptr when options.lockdep was off.
  Lockdep* lockdep() { return lockdep_.get(); }

  // SyncObserver:
  void acquiring(const SyncId& id) override;
  bool acquire(const SyncId& id, std::mutex& mu) override;
  bool try_acquire(const SyncId& id, std::mutex& mu) override;
  void acquired(const SyncId& id) override;
  void released(const SyncId& id) override;
  bool wait(const SyncId& cv, const SyncId& mu_id, std::mutex& mu) override;
  bool wait_until(const SyncId& cv, const SyncId& mu_id, std::mutex& mu,
                  std::chrono::steady_clock::time_point deadline,
                  std::cv_status* status) override;
  void notify(const SyncId& cv, bool all) override;
  void yield(const char* site) override;
  void* thread_spawning(const char* name) override;
  void thread_started(void* handle) override;
  void thread_finished(void* handle) override;
  void thread_joining(void* handle) override;
  void* blocking_region_enter() override;
  void blocking_region_exit(void* token) override;

  /// One registered participant; defined in the .cpp (public so the
  /// file-local thread_local registration pointer can name it).
  struct ThreadRec;

 private:
  /// The calling thread's record, or nullptr for threads the explorer
  /// does not control (they fall back to real blocking operations).
  ThreadRec* self() const;

  /// Parks the calling thread (already in its wait state) and returns
  /// once it is granted the processor again. Timed condvar waiters
  /// self-wake when their real deadline passes. Requires mu_.
  void park(std::unique_lock<std::mutex>& lk, ThreadRec* rec);
  /// Marks `rec` runnable and parks until granted (one scheduling
  /// decision). Requires mu_.
  void reschedule(std::unique_lock<std::mutex>& lk, ThreadRec* rec,
                  const char* op, const SyncId* obj);
  /// Picks the next thread to run — or, with nobody runnable and no
  /// deadline / external region pending, declares deadlock. Requires mu_.
  void grant_next(std::unique_lock<std::mutex>& lk);
  /// Records one scheduling decision (trace tail + fingerprint).
  /// Requires mu_.
  void record(const ThreadRec& rec);
  /// Prints the deadlock report and exits the process. Requires mu_.
  [[noreturn]] void declare_deadlock(std::unique_lock<std::mutex>& lk);
  /// Shared body of wait / wait_until.
  bool wait_common(const SyncId& cv, const SyncId& mu_id, std::mutex& mu,
                   bool timed, std::chrono::steady_clock::time_point deadline,
                   std::cv_status* status);

  mutable std::mutex mu_;  // raw std primitives: hook reentrancy
  std::condition_variable cv_;

  ExplorerOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  /// Real mutex objects currently held (object -> holder; nullptr holder
  /// for uncontrolled threads). Diagnostic only — waiter wake-ups are
  /// driven purely by release hooks.
  std::map<const void*, ThreadRec*> mutex_owner_;
  ThreadRec* current_ = nullptr;
  bool deadlock_ = false;
  std::string report_;
  std::vector<std::string> trace_;
  std::uint64_t trace_dropped_ = 0;
  std::uint64_t fingerprint_ = 0xcbf29ce484222325ull;  // FNV-1a basis
  std::uint64_t steps_ = 0;
  std::uint64_t next_change_ = 0;
  /// Monotonically decreasing priority floor handed to demoted threads.
  std::uint64_t demote_floor_ = 1u << 20;
  std::unique_ptr<Lockdep> lockdep_;
};

}  // namespace hlock::sched
