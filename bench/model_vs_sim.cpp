// Analytical model vs. simulation (paper §4.2: "by modeling response times
// in terms of network latencies and queuing delays, we analytically derived
// complexity bounds of the protocol. The model and additional measurements
// indicate that the superlinear behavior is due to queuing delays").
//
// Runs the Fig. 10 experiment alongside the closed-network response-time
// model of src/analysis and prints both, per ratio: the model must land the
// knee position and the linear asymptote, the two signatures the paper's
// argument rests on.
#include <cstdio>

#include "analysis/response_model.hpp"
#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::ExperimentConfig;

int main() {
  const auto preset = sim::ibm_sp_preset();

  std::printf("Analytical model vs. simulation — mean operation response "
              "time (ms), IBM SP parameters\n\n");

  for (int ratio : {1, 10, 25}) {
    analysis::ModelParams params;
    params.cs_ms = 15.0;
    params.idle_ms = 15.0 * ratio;
    params.net_ms = preset.message_latency.mean().to_ms();

    stats::TextTable table;
    table.set_header({"nodes", "simulated", "model", "model queueing"});
    for (std::size_t nodes : {2u, 5u, 10u, 20u, 40u, 80u, 120u}) {
      ExperimentConfig config;
      config.nodes = nodes;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time =
          DurationDist::uniform(SimTime::ms(15L * ratio), 0.5);
      config.ops_per_node = 40;
      config.seed = 41 + nodes;
      const auto sim_result = bench::run_averaged(config, 2);

      params.nodes = nodes;
      const auto model = analysis::predict(params);
      table.add_row({std::to_string(nodes),
                     stats::TextTable::num(sim_result.mean_latency_ms, 2),
                     stats::TextTable::num(model.response_ms, 2),
                     stats::TextTable::num(model.queueing_ms, 2)});
    }
    const auto model_at_1 = analysis::predict(params);
    std::printf("ratio = %d (conflict probability %.4f, predicted knee at "
                "%.1f nodes)\n",
                ratio, model_at_1.conflict_probability,
                model_at_1.knee_nodes);
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
