#include "recovery/manager.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace hlock::recovery {

using proto::ElectToken;
using proto::EpochFence;
using proto::FenceHolder;
using proto::Heartbeat;
using proto::Message;
using proto::Payload;
using proto::QueuedRequest;
using proto::Suspect;

void Outcome::merge(Outcome&& other) {
  for (auto& m : other.messages) messages.push_back(std::move(m));
  for (auto& fe : other.fence_effects) fence_effects.push_back(std::move(fe));
  for (auto& e : other.events) events.push_back(std::move(e));
  unhalted = unhalted || other.unhalted;
}

Manager::Manager(NodeId self, std::size_t node_count, Options options,
                 Host* host)
    : self_(self), node_count_(node_count), options_(options), host_(host) {
  HLOCK_REQUIRE(host != nullptr, "recovery manager needs a host");
  HLOCK_REQUIRE(self.value() < node_count,
                "recovery manager self id out of range");
  last_heard_.resize(node_count);
}

bool Manager::is_dead(NodeId node) const {
  return std::binary_search(dead_.begin(), dead_.end(), node);
}

NodeId Manager::coordinator() const {
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    if (!is_dead(NodeId{i})) return NodeId{i};
  }
  HLOCK_INVARIANT(false, "every node is believed dead, including self");
  return NodeId::none();
}

std::vector<NodeId> Manager::live_peers() const {
  std::vector<NodeId> peers;
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    const NodeId node{i};
    if (node != self_ && !is_dead(node)) peers.push_back(node);
  }
  return peers;
}

Message Manager::make_message(NodeId to, proto::LockId lock,
                              Payload payload) const {
  // Recovery messages leave the envelope epoch 0: they are exempt from the
  // automatons' epoch gate and carry their own campaign ids.
  return Message{self_, to, lock, std::move(payload)};
}

void Manager::note_alive(NodeId from, SimTime now) {
  if (!options_.enabled || from == self_ || from.value() >= node_count_) {
    return;
  }
  if (is_dead(from)) return;  // suspicions are never retracted
  last_heard_[from.value()] = now;
}

Outcome Manager::on_tick(SimTime now) {
  Outcome out;
  if (!options_.enabled) return out;
  if (next_heartbeat_ <= now) {
    next_heartbeat_ = now + options_.heartbeat_interval;
    for (NodeId peer : live_peers()) {
      out.messages.push_back(
          make_message(peer, proto::LockId{0}, Heartbeat{}));
    }
  }
  // Timeout scan. The first tick seeds the baseline instead of suspecting,
  // so a cluster started long after t=0 does not declare everyone dead.
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    const NodeId peer{i};
    if (peer == self_ || is_dead(peer)) continue;
    if (last_heard_[i] == SimTime{}) {
      last_heard_[i] = now;
    } else if (now - last_heard_[i] >= options_.suspect_after) {
      adopt_dead(peer, now, out);
    }
  }
  return out;
}

Outcome Manager::suspect(NodeId dead, SimTime now) {
  Outcome out;
  if (!options_.enabled) return out;
  adopt_dead(dead, now, out);
  return out;
}

Outcome Manager::on_message(const Message& message, SimTime now) {
  Outcome out;
  if (!options_.enabled) return out;
  if (is_dead(message.from)) return out;  // zombie traffic; never retract
  note_alive(message.from, now);

  if (std::get_if<Heartbeat>(&message.payload) != nullptr) {
    return out;  // note_alive above is the whole effect
  }
  if (const auto* suspicion = std::get_if<Suspect>(&message.payload)) {
    adopt_dead(suspicion->dead, now, out);
    return out;
  }
  if (const auto* report = std::get_if<ElectToken>(&message.payload)) {
    // Converge onto the sender's dead set first; a report for a larger
    // campaign implies every node it lists is dead.
    for (NodeId d : report->dead) adopt_dead(d, now, out);
    if (report->dead != dead_) return out;  // stale smaller campaign
    if (coordinator() != self_) return out;  // misdirected; sender lags
    if (!halted_) return out;  // duplicate after this campaign minted
    ingest_report(message.from, message.lock, *report);
    maybe_mint(now, out);
    return out;
  }
  if (const auto* fence = std::get_if<EpochFence>(&message.payload)) {
    for (NodeId d : fence->dead) adopt_dead(d, now, out);
    if (fence->dead != dead_) return out;  // stale smaller campaign
    apply_fence(message.lock, *fence, now, out);
    return out;
  }
  HLOCK_INVARIANT(false, "protocol payload routed to the recovery manager");
  return out;
}

void Manager::adopt_dead(NodeId node, SimTime now, Outcome& out) {
  if (node == self_ || node.value() >= node_count_ || is_dead(node)) return;
  dead_.insert(std::upper_bound(dead_.begin(), dead_.end(), node), node);
  ++counters_.suspicions;

  trace::TraceEvent event;
  event.at = now;
  event.kind = trace::EventKind::kNodeDead;
  event.node = self_;
  event.peer = node;
  event.epoch = max_epoch_seen_;
  out.events.push_back(std::move(event));

  // Gossip once per adoption so a single node's timeout converges the
  // cluster; peers that already suspect `node` ignore the duplicate.
  for (NodeId peer : live_peers()) {
    out.messages.push_back(make_message(peer, proto::LockId{0},
                                        Suspect{node}));
  }

  if (!halted_) {
    halted_ = true;
    halt_started_ = now;
  }
  // The dead set is the campaign identity: growing it starts a fresh
  // campaign, so all gathering state restarts from scratch. halt_started_
  // is kept — the recovery latency metric measures the whole outage.
  reports_.clear();
  fences_received_.clear();
  fences_expected_ = UINT32_MAX;
  send_reports(now, out);
}

void Manager::send_reports(SimTime now, Outcome& out) {
  const NodeId coord = coordinator();
  const std::vector<proto::LockId> locks = host_->recovery_locks();
  std::vector<std::pair<proto::LockId, ElectToken>> reports;
  if (locks.empty()) {
    // Lockless report: announces "I have no per-lock state" so the
    // coordinator's completeness check still covers this node.
    ElectToken report;
    report.dead = dead_;
    reports.emplace_back(proto::LockId{0}, std::move(report));
  } else {
    for (std::size_t i = 0; i < locks.size(); ++i) {
      const LockReport state = host_->report(locks[i]);
      ElectToken report;
      report.dead = dead_;
      report.lock_count = static_cast<std::uint32_t>(locks.size());
      report.lock_index = static_cast<std::uint32_t>(i);
      report.epoch = state.epoch;
      report.has_token = state.has_token;
      report.held = state.held;
      report.waiting = state.waiting;
      report.wait_mode = state.wait_mode;
      report.wait_seq = state.wait_seq;
      report.wait_priority = state.wait_priority;
      report.upgrading = state.upgrading;
      reports.emplace_back(locks[i], std::move(report));
    }
  }
  if (coord == self_) {
    // The coordinator ingests its own reports synchronously (runtimes need
    // not support self-delivery).
    for (auto& [lock, report] : reports) {
      ingest_report(self_, lock, report);
    }
    maybe_mint(now, out);
  } else {
    for (auto& [lock, report] : reports) {
      out.messages.push_back(make_message(coord, lock, std::move(report)));
    }
  }
}

void Manager::ingest_report(NodeId from, proto::LockId lock,
                            const ElectToken& report) {
  PeerReports& peer = reports_[from.value()];
  peer.expected = report.lock_count;
  if (report.lock_count > 0) peer.locks[lock.value()] = report;
  max_epoch_seen_ = std::max(max_epoch_seen_, report.epoch);
}

void Manager::maybe_mint(SimTime now, Outcome& out) {
  if (!halted_ || coordinator() != self_) return;
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    const NodeId node{i};
    if (is_dead(node)) continue;
    auto it = reports_.find(i);
    if (it == reports_.end() || !it->second.complete()) return;
  }

  // Campaign epoch: strictly greater than every epoch any report has seen,
  // and ≡ self (mod n) — two coordinators of concurrent diverged campaigns
  // can therefore never mint the same epoch.
  const auto n = static_cast<std::uint32_t>(node_count_);
  const std::uint32_t epoch =
      (max_epoch_seen_ / n + 1) * n + self_.value();
  max_epoch_seen_ = epoch;
  ++counters_.campaigns_led;

  // Union of reported locks, ascending (std::map keys).
  std::map<std::uint32_t, std::vector<std::pair<NodeId, ElectToken>>> by_lock;
  for (const auto& [node_value, peer] : reports_) {
    for (const auto& [lock_value, report] : peer.locks) {
      by_lock[lock_value].emplace_back(NodeId{node_value}, report);
    }
  }

  const std::vector<NodeId> peers = live_peers();
  std::vector<std::pair<proto::LockId, EpochFence>> fences;
  const auto count = static_cast<std::uint32_t>(by_lock.size());
  for (const auto& [lock_value, entries] : by_lock) {
    EpochFence fence;
    fence.dead = dead_;
    fence.epoch = epoch;
    fence.fence_index = static_cast<std::uint32_t>(fences.size());
    fence.fence_count = count;

    // New root: the surviving token reporter; with the token lost (holder
    // crashed, or in flight toward a crashed node), the token is minted
    // fresh at the lowest live node. Reports are gathered per node, so at
    // most one can claim the token per lock — but a doctored or byzantine
    // history could produce two; lowest id wins deterministically and the
    // loser is demoted by its fence.
    fence.new_root = NodeId::none();
    for (const auto& [node, report] : entries) {
      if (report.has_token &&
          (fence.new_root.is_none() || node < fence.new_root)) {
        fence.new_root = node;
      }
    }
    if (fence.new_root.is_none()) fence.new_root = coordinator();

    // Root copyset: every surviving holder, by self-reported held mode.
    for (const auto& [node, report] : entries) {
      if (report.held != proto::LockMode::kNL && node != fence.new_root) {
        fence.holders.push_back(FenceHolder{node, report.held});
      }
    }
    // Root queue: every surviving waiter — including the new root's own
    // (the hierarchical root serves itself through its queue; the Naimi
    // install filters root entries out). Priority first, then FIFO by seq,
    // node id as the cross-node tiebreaker. Upgraders report
    // waiting=false: their pending W is preserved as an in-flight Rule 7
    // upgrade at the root, not re-queued.
    for (const auto& [node, report] : entries) {
      if (report.waiting) {
        fence.queue.push_back(QueuedRequest{node, report.wait_mode,
                                            report.wait_seq,
                                            report.wait_priority});
      }
    }
    std::sort(fence.queue.begin(), fence.queue.end(),
              [](const QueuedRequest& a, const QueuedRequest& b) {
                if (a.priority != b.priority) return a.priority > b.priority;
                if (a.seq != b.seq) return a.seq < b.seq;
                return a.requester < b.requester;
              });
    fences.emplace_back(proto::LockId{lock_value}, std::move(fence));
  }
  if (fences.empty()) {
    // No per-lock state anywhere: one placeholder fence carries the unhalt
    // signal and the epoch bump.
    EpochFence fence;
    fence.dead = dead_;
    fence.epoch = epoch;
    fence.new_root = coordinator();
    fence.fence_index = 0;
    fence.fence_count = 0;
    fences.emplace_back(proto::LockId{0}, std::move(fence));
  }

  // Fault injection (model checker expect-violation run): appoint a second
  // root for the first lock at the same epoch on every other peer — the
  // double-regeneration bug per-epoch token conservation must catch.
  NodeId doctored_root = NodeId::none();
  if (options_.doctor_double_fence && !fences.empty()) {
    for (NodeId peer : peers) {
      if (peer != fences.front().second.new_root) {
        doctored_root = peer;
        break;
      }
    }
  }

  for (std::size_t p = 0; p < peers.size(); ++p) {
    for (const auto& [lock, fence] : fences) {
      EpochFence copy = fence;
      // Odd-index peers get the conflicting root; with a single peer the
      // bug would otherwise never fire (a 3-node cluster minus one victim),
      // so that lone peer is always a target.
      if (!doctored_root.is_none() && (p % 2 == 1 || peers.size() == 1) &&
          fence.fence_index == 0) {
        copy.new_root = doctored_root;
      }
      out.messages.push_back(make_message(peers[p], lock, std::move(copy)));
    }
  }
  for (const auto& [lock, fence] : fences) {
    apply_fence(lock, fence, now, out);
  }
}

void Manager::apply_fence(proto::LockId lock, const EpochFence& fence,
                          SimTime now, Outcome& out) {
  fences_expected_ = fence.fence_count;
  const bool fresh = fences_received_.insert(fence.fence_index).second;
  if (fence.fence_count > 0 && fresh) {
    core::Effects fx = host_->install_fence(lock, fence);
    ++counters_.fences_installed;
    out.fence_effects.emplace_back(lock, std::move(fx));
  }
  max_epoch_seen_ = std::max(max_epoch_seen_, fence.epoch);
  // Locks first touched after this recovery must root at a live node and
  // start in the new epoch (the pre-crash default root may be dead).
  host_->set_default_origin(coordinator(), fence.epoch);

  if (halted_ &&
      (fences_expected_ == 0 ||
       fences_received_.size() >= fences_expected_)) {
    unhalt(now, out);
  }
}

void Manager::unhalt(SimTime now, Outcome& out) {
  halted_ = false;
  ++counters_.recoveries;
  recovery_ms_.push_back((now - halt_started_).to_ms());
  out.unhalted = true;
}

std::string Manager::fingerprint() const {
  std::ostringstream os;
  os << (halted_ ? 'H' : 'h') << max_epoch_seen_ << 'd';
  for (NodeId d : dead_) os << d.value() << ',';
  os << 'r';
  for (const auto& [node, peer] : reports_) {
    os << node << '=' << peer.expected << ':';
    for (const auto& [lock, report] : peer.locks) {
      os << lock << '(' << report.epoch << (report.has_token ? 'T' : 't')
         << static_cast<int>(report.held) << (report.waiting ? 'W' : 'w')
         << static_cast<int>(report.wait_mode) << report.wait_seq << '/'
         << static_cast<int>(report.wait_priority)
         << (report.upgrading ? 'U' : 'u') << ')';
    }
    os << ';';
  }
  os << 'f' << fences_expected_ << ':';
  for (std::uint32_t i : fences_received_) os << i << ',';
  return os.str();
}

}  // namespace hlock::recovery
