// Subprocess seed harness for the schedule explorer.
//
// A schedule the Explorer proves deadlocked ends its process (see
// explorer.hpp) — so exploring N seeds means running each seed in a forked
// child and classifying the exit status. This header is that fork/exec-free
// plumbing, shared by the SchedTest gtest harness (tests/sched/) and
// `hlock_sim --sched-seeds`. The child runs Explorer::run(body) with its
// stdout/stderr captured into a pipe; on a clean finish it prints a
// machine-greppable completion line carrying the schedule fingerprint, so
// the parent can verify that replaying a seed reproduces the identical
// interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sched/explorer.hpp"

namespace hlock::sched {

/// What happened to one explored seed (classified child exit status).
enum class SeedVerdict {
  kOk,             ///< schedule completed, body reported no failure
  kDeadlock,       ///< explorer proved a deadlock (kSchedDeadlockExit)
  kBudgetExceeded, ///< schedule hit its decision budget (kSchedBudgetExit)
  kBodyFailure,    ///< body's failed() predicate returned true
  kCrash,          ///< child died on a signal or unknown status
};

const char* seed_verdict_name(SeedVerdict verdict);

struct SeedResult {
  SeedVerdict verdict = SeedVerdict::kCrash;
  /// Raw exit code (or -signal for signal deaths).
  int status = 0;
  /// Combined stdout+stderr of the child, deadlock reports included.
  std::string output;
  /// The schedule fingerprint parsed from the completion / deadlock
  /// output, when present.
  std::optional<std::uint64_t> fingerprint;
};

/// Forks, runs Explorer(options).run(body) in the child with output
/// captured, and classifies the exit. `failed` (optional) is evaluated in
/// the child after the body — return true to mark the seed kBodyFailure
/// (e.g. ::testing::Test::HasFailure). Must be called with no other
/// threads live in the calling process (between tests / before workers).
SeedResult run_seed(const ExplorerOptions& options,
                    const std::function<void()>& body,
                    const std::function<bool()>& failed = {});

/// Extracts the "fingerprint: N" value from captured child output.
std::optional<std::uint64_t> parse_fingerprint(const std::string& output);

}  // namespace hlock::sched
