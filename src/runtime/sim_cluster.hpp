// A simulated cluster: N protocol engines wired through the discrete-event
// simulator and a latency model, with metrics collection.
//
// This is the harness every evaluation experiment runs on. Application-level
// drivers (see workload/) issue request/release/upgrade calls; the cluster
// applies the returned effects — scheduling message deliveries on the
// simulator with sampled network latency, counting messages, and invoking
// the registered grant handler when a node enters its critical section.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/hier_config.hpp"
#include "obs/lamport.hpp"
#include "recovery/manager.hpp"
#include "runtime/engine.hpp"
#include "sim/network_model.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "trace/event.hpp"
#include "util/rng.hpp"

namespace hlock::runtime {

/// Construction parameters of a simulated cluster.
struct SimClusterOptions {
  std::size_t node_count = 2;
  Protocol protocol = Protocol::kHierarchical;
  /// One-way message latency model (see sim/network_model.hpp presets).
  DurationDist message_latency = DurationDist::uniform(SimTime::ms(150), 0.5);
  /// Seed for the network latency stream.
  std::uint64_t seed = 1;
  /// Feature flags for the hierarchical protocol (ignored by Naimi).
  core::HierConfig hier_config = {};
  /// Node that initially holds the token of every lock.
  NodeId initial_root = NodeId{0};
  /// FAILURE INJECTION (testing only): probability that a transmitted
  /// message is silently dropped. The protocol assumes reliable FIFO
  /// transport — any non-zero value eventually wedges a run; the harness's
  /// deadlock/livelock detectors must catch it, and the chaos tests verify
  /// they do. Dropped messages still count in the metrics (they were sent).
  double message_loss_probability = 0.0;
  /// Crash-recovery configuration (docs/recovery.md). When enabled, every
  /// node runs a recovery::Manager next to its engine: heartbeats tick on
  /// the simulator, kill_at() schedules crash-stops, and detected deaths
  /// trigger epoch-fenced token regeneration. Not supported for the
  /// Raymond baseline (its engine has no crash-recovery hooks).
  recovery::Options recovery = {};
  /// Heartbeat ticks stop being scheduled past this simulated-time horizon
  /// so run_to_completion() still terminates with recovery enabled. Raise
  /// it for long chaos runs (or drive the simulator with run_until).
  SimTime recovery_horizon = SimTime::ms(600'000);
};

/// See file comment.
class SimCluster {
 public:
  explicit SimCluster(const SimClusterOptions& options);

  /// Called when `node` enters the critical section of `lock`, or when its
  /// Rule 7 upgrade on `lock` completes (`upgraded` = true).
  using GrantHandler =
      std::function<void(NodeId node, LockId lock, bool upgraded)>;

  /// Registers the grant handler (typically the workload driver). Must be
  /// set before any request is issued.
  void set_grant_handler(GrantHandler handler);

  /// Observes every transmitted message at send time (tracing, custom
  /// statistics). Optional; called before the delivery is scheduled.
  using MessageObserver =
      std::function<void(SimTime sent_at, const proto::Message& message)>;
  void set_message_observer(MessageObserver observer);

  /// Observes every structured protocol event the automatons emit, stamped
  /// with the simulated time of the step that produced it. Only fires when
  /// the hierarchical config has trace_events enabled. Feed these to
  /// trace::TraceRecorder and/or lint::Checker.
  using EventObserver = std::function<void(trace::TraceEvent event)>;
  void set_event_observer(EventObserver observer);

  // ---- Application operations (asynchronous; grants arrive via the
  //      handler, possibly synchronously within the call) ----

  void request(NodeId node, LockId lock, LockMode mode,
               std::uint8_t priority = 0);
  void release(NodeId node, LockId lock);
  void upgrade(NodeId node, LockId lock);

  // ---- Crash-stop failure injection (docs/recovery.md) ----

  /// Schedules `node` to crash-stop at simulated time `at`: from then on it
  /// receives nothing, sends nothing and ignores application calls.
  /// Messages it sent before the crash still deliver (they were in flight).
  /// Requires recovery to be enabled so the survivors can regenerate the
  /// token; `at` must not be in the simulator's past.
  void kill_at(NodeId node, SimTime at);

  /// False once the node's scheduled crash has executed.
  bool alive(NodeId node) const;

  /// The node's recovery manager (counters, epoch, halt state).
  /// Precondition: recovery is enabled.
  recovery::Manager& manager(NodeId node);

  /// Protocol messages `node` dropped because they carried a pre-fence
  /// recovery epoch.
  std::uint64_t stale_drops(NodeId node) const;
  /// Sum of stale_drops(node) over the cluster.
  std::uint64_t total_stale_drops() const;

  // ---- Accessors ----

  sim::Simulator& simulator() { return simulator_; }
  stats::MetricsRegistry& metrics() { return metrics_; }
  const stats::MetricsRegistry& metrics() const { return metrics_; }
  std::size_t node_count() const { return engines_.size(); }
  const SimClusterOptions& options() const { return options_; }
  LockEngine& engine(NodeId node);

  /// The hierarchical automaton of (node, lock); precondition: the cluster
  /// runs the hierarchical protocol. For invariant checks and tests.
  core::HierAutomaton& hier_automaton(NodeId node, LockId lock);
  /// The Naimi automaton of (node, lock); precondition: Naimi protocol.
  naimi::NaimiAutomaton& naimi_automaton(NodeId node, LockId lock);
  /// The Raymond automaton of (node, lock); precondition: Raymond protocol.
  raymond::RaymondAutomaton& raymond_automaton(NodeId node, LockId lock);

  /// `node`'s Lamport clock. The cluster runs one clock per node: ticked on
  /// every automaton step and every send, merged on every delivery, stamped
  /// onto trace events (TraceEvent::lamport) and messages
  /// (Message::lamport) — see obs/lamport.hpp.
  const obs::LamportClock& lamport(NodeId node) const {
    return clocks_[node.value()];
  }

 private:
  /// One application operation buffered while its node was halted.
  struct PendingOp {
    enum class Kind : std::uint8_t { kRequest, kRelease, kUpgrade };
    Kind kind = Kind::kRequest;
    LockId lock{};
    LockMode mode = LockMode::kNL;
    std::uint8_t priority = 0;
  };

  bool recovery_on() const { return !managers_.empty(); }
  void apply(NodeId node, LockId lock, Effects&& effects);
  void transmit(const proto::Message& message);
  /// Receive-side routing: dead-node drop, failure-detector refresh,
  /// recovery-kind dispatch, halt/epoch buffering, then engine delivery.
  void deliver(const proto::Message& message);
  /// Applies one Manager step: sinks its events, transmits its messages,
  /// applies its fence effects and replays buffers on unhalt.
  void apply_outcome(NodeId node, recovery::Outcome&& outcome);
  /// Re-runs parked and halted-backlog messages plus buffered application
  /// operations through the normal paths (stale ones drop in the engine).
  void replay_buffers(NodeId node);
  void crash(NodeId node);
  void schedule_recovery_tick();

  SimClusterOptions options_;
  sim::Simulator simulator_;
  sim::NetworkModel network_;
  Rng loss_rng_;
  stats::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<LockEngine>> engines_;
  std::vector<obs::LamportClock> clocks_;
  /// Empty unless options_.recovery.enabled; one manager per node.
  std::vector<std::unique_ptr<recovery::Manager>> managers_;
  std::vector<char> alive_;
  /// Protocol messages received while halted, replayed on unhalt.
  std::vector<std::vector<proto::Message>> halted_msgs_;
  /// Messages from a newer recovery epoch than the local automaton's,
  /// parked until the matching fence lands (delivering early would make
  /// the automaton stale-drop a post-fence message).
  std::vector<std::vector<proto::Message>> parked_msgs_;
  /// Application operations issued while halted, replayed on unhalt.
  std::vector<std::vector<PendingOp>> halted_ops_;
  std::vector<std::uint64_t> stale_drops_;
  GrantHandler grant_handler_;
  MessageObserver message_observer_;
  EventObserver event_observer_;
};

}  // namespace hlock::runtime
