#include "proto/ids.hpp"

namespace hlock::proto {

std::string to_string(NodeId id) {
  if (id.is_none()) return "none";
  return "node" + std::to_string(id.value());
}

std::string to_string(LockId id) { return "lock" + std::to_string(id.value()); }

std::string to_string(RequestId id) {
  if (id.is_none()) return "none";
  return to_string(id.origin) + "#" + std::to_string(id.seq);
}

}  // namespace hlock::proto
