#include "util/check.hpp"

#include <sstream>

namespace hlock::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

void throw_usage(const char* expr, const char* file, int line,
                 const std::string& msg) {
  throw UsageError(format("precondition", expr, file, line, msg));
}

}  // namespace hlock::detail
