#include "workload/sim_driver.hpp"

#include "util/check.hpp"

namespace hlock::workload {

using runtime::Protocol;

SimWorkloadDriver::SimWorkloadDriver(runtime::SimCluster& cluster,
                                     WorkloadSpec spec)
    : cluster_(cluster), spec_(spec) {
  HLOCK_REQUIRE(spec.node_count == cluster.node_count(),
                "spec and cluster disagree on the node count");
  HLOCK_REQUIRE(spec.ops_per_node >= 0, "ops_per_node must be >= 0");
  // The hierarchical variant needs the multi-mode protocol; the Naimi
  // variants run on any mode-less protocol (Naimi or Raymond).
  const bool hier_cluster =
      cluster.options().protocol == Protocol::kHierarchical;
  const bool hier_variant = spec.variant == AppVariant::kHierarchical;
  HLOCK_REQUIRE(hier_cluster == hier_variant,
                "workload variant does not match the cluster's protocol");

  Rng root{spec.seed};
  nodes_.resize(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    nodes_[i].rng = root.split(i + 1);
    nodes_[i].remaining = spec.ops_per_node;
  }
  cluster_.set_grant_handler(
      [this](NodeId node, proto::LockId lock, bool upgraded) {
        on_grant(node, lock, upgraded);
      });
}

void SimWorkloadDriver::set_periodic_check(std::uint64_t every,
                                           std::function<void()> check) {
  HLOCK_REQUIRE(every > 0, "check period must be positive");
  check_every_ = every;
  periodic_check_ = std::move(check);
}

void SimWorkloadDriver::run() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    if (nodes_[i].remaining > 0) {
      schedule_idle(node);
    } else {
      nodes_[i].phase = Phase::kDone;
    }
  }
  const runtime::SimClusterOptions& cluster_options = cluster_.options();
  for (const WorkloadSpec::Kill& kill : spec_.kills) {
    HLOCK_REQUIRE(kill.node.value() < spec_.node_count,
                  "kill schedule names a node outside the cluster");
    HLOCK_REQUIRE(cluster_options.recovery.enabled,
                  "kill schedule requires SimClusterOptions::recovery");
    cluster_.kill_at(kill.node, kill.at);
    // The driver-side obituary: forgive the victim's unfinished operations
    // and ignore its still-scheduled timers from this moment on.
    cluster_.simulator().schedule_at(kill.at, [this, node = kill.node] {
      NodeState& st = state(node);
      st.dead = true;
      st.remaining = 0;
      st.phase = Phase::kDone;
    });
  }

  // Generous livelock bound: every operation needs a handful of timer
  // events plus O(locks * nodes) protocol messages in the worst case.
  const std::uint64_t total_ops = static_cast<std::uint64_t>(
      spec_.ops_per_node > 0 ? spec_.ops_per_node : 0) * spec_.node_count;
  std::uint64_t budget =
      spec_.max_events != 0
          ? spec_.max_events
          : 1'000'000 + total_ops * (spec_.table_entries + 4) *
                            (spec_.node_count + 16);
  if (spec_.max_events == 0 && cluster_options.recovery.enabled) {
    // The failure detector keeps heartbeating until the recovery horizon:
    // one tick event plus a full fan-out of heartbeats per node per
    // interval, all of which count against the simulator's event budget.
    const std::int64_t interval_ns =
        std::max<std::int64_t>(1,
                               cluster_options.recovery.heartbeat_interval
                                   .count_ns());
    const std::uint64_t ticks = static_cast<std::uint64_t>(
        cluster_options.recovery_horizon.count_ns() / interval_ns) + 2;
    budget += ticks * spec_.node_count * (spec_.node_count + 4);
  }

  sim::Simulator& sim = cluster_.simulator();
  const std::uint64_t chunk =
      check_every_ > 0 ? check_every_ : std::uint64_t{65536};
  while (sim.events_pending() > 0) {
    HLOCK_INVARIANT(sim.events_executed() < budget,
                    "event budget exceeded: protocol livelock suspected");
    sim.run_events(chunk);
    if (periodic_check_) periodic_check_();
  }

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dead) continue;  // crash-stopped mid-run; ops forgiven
    HLOCK_INVARIANT(nodes_[i].phase == Phase::kDone,
                    "simulation drained but node" + std::to_string(i) +
                        " has unfinished operations (lost request?)");
  }
}

void SimWorkloadDriver::schedule_idle(NodeId node) {
  NodeState& st = state(node);
  st.phase = Phase::kIdle;
  const SimTime idle = spec_.idle_time.sample(st.rng);
  cluster_.simulator().schedule_in(idle, [this, node] { begin_op(node); });
}

void SimWorkloadDriver::begin_op(NodeId node) {
  NodeState& st = state(node);
  if (st.dead) return;
  HLOCK_INVARIANT(st.phase == Phase::kIdle, "begin_op outside idle phase");
  const LockMode drawn = spec_.mix.sample(st.rng);
  st.kind = op_for_mode(drawn);
  const std::size_t entry =
      st.rng.chance(spec_.entry_locality)
          ? node.value() % spec_.table_entries
          : static_cast<std::size_t>(st.rng.below(spec_.table_entries));
  st.steps = plan_op(spec_.variant, st.kind, entry, spec_.table_entries);
  st.next_step = 0;
  st.op_start = cluster_.simulator().now();
  st.phase = Phase::kAcquiring;
  issue_next_step(node);
}

void SimWorkloadDriver::issue_next_step(NodeId node) {
  NodeState& st = state(node);
  const LockStep& step = st.steps[st.next_step];
  ++stats_.acquisitions;
  st.step_start = cluster_.simulator().now();
  cluster_.request(node, step.lock, step.mode);
}

void SimWorkloadDriver::on_grant(NodeId node, proto::LockId lock,
                                 bool upgraded) {
  NodeState& st = state(node);
  if (st.dead) return;
  if (upgraded) {
    HLOCK_INVARIANT(st.phase == Phase::kWaitUpgrade,
                    "upgrade completion outside an upgrade wait");
    stats_.upgrade_latency.record(cluster_.simulator().now() -
                                  st.upgrade_start);
    st.phase = Phase::kInCs;
    cluster_.simulator().schedule_in(st.cs_remaining,
                                     [this, node] { finish_cs(node); });
    return;
  }

  HLOCK_INVARIANT(st.phase == Phase::kAcquiring,
                  "grant received outside the acquisition phase");
  HLOCK_INVARIANT(lock == st.steps[st.next_step].lock,
                  "grant for an unexpected lock");
  stats_.acq_latency.record(cluster_.simulator().now() - st.step_start);
  ++st.next_step;
  if (st.next_step < st.steps.size()) {
    issue_next_step(node);
  } else {
    enter_cs(node);
  }
}

void SimWorkloadDriver::enter_cs(NodeId node) {
  NodeState& st = state(node);
  const SimTime latency = cluster_.simulator().now() - st.op_start;
  stats_.op_latency.record(latency);
  stats_.latency_by_kind[static_cast<std::size_t>(st.kind)].record(latency);
  cluster_.metrics().latency().record(latency);
  st.phase = Phase::kInCs;

  const SimTime cs = spec_.cs_length.sample(st.rng);
  bool upgrades = false;
  for (const LockStep& step : st.steps) upgrades |= step.upgrade_midway;
  if (upgrades) {
    // Read-then-upgrade: hold U for half the critical section, upgrade,
    // write for the other half (Rule 7 in action).
    st.cs_remaining = SimTime::ns(cs.count_ns() / 2);
    cluster_.simulator().schedule_in(st.cs_remaining,
                                     [this, node] { start_upgrade(node); });
  } else {
    cluster_.simulator().schedule_in(cs, [this, node] { finish_cs(node); });
  }
}

void SimWorkloadDriver::start_upgrade(NodeId node) {
  NodeState& st = state(node);
  if (st.dead) return;
  HLOCK_INVARIANT(st.phase == Phase::kInCs, "upgrade outside the CS");
  st.phase = Phase::kWaitUpgrade;
  st.upgrade_start = cluster_.simulator().now();
  for (const LockStep& step : st.steps) {
    if (step.upgrade_midway) {
      cluster_.upgrade(node, step.lock);
      return;
    }
  }
  HLOCK_INVARIANT(false, "no upgrade step in an upgrading operation");
}

void SimWorkloadDriver::finish_cs(NodeId node) {
  NodeState& st = state(node);
  if (st.dead) return;
  HLOCK_INVARIANT(st.phase == Phase::kInCs, "finish_cs outside the CS");
  for (std::size_t i = st.steps.size(); i-- > 0;) {
    cluster_.release(node, st.steps[i].lock);
  }
  ++stats_.ops;
  ++stats_.ops_by_kind[static_cast<std::size_t>(st.kind)];
  --st.remaining;
  if (st.remaining > 0) {
    schedule_idle(node);
  } else {
    st.phase = Phase::kDone;
  }
}

}  // namespace hlock::workload
