// RAII helpers for the threaded client API.
//
// LockGuard scopes a single acquisition; HierGuard scopes the common
// hierarchical pattern of the paper's workload — an intent lock on a
// coarse resource (the table) plus a real lock on a fine one (an entry) —
// acquiring coarse-to-fine and releasing in reverse, the globally
// consistent order that rules out application-level deadlock.
#pragma once

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "runtime/thread_cluster.hpp"
#include "util/check.hpp"

namespace hlock::runtime {

/// Scoped ownership of one lock. Movable, not copyable.
class LockGuard {
 public:
  /// Blocks until `lock` is granted to `node` in `mode`.
  LockGuard(ThreadCluster& cluster, NodeId node, LockId lock, LockMode mode)
      : cluster_(&cluster), node_(node), lock_(lock) {
    cluster.lock(node, lock, mode);
    held_mode_ = mode;
  }

  LockGuard(LockGuard&& other) noexcept
      : cluster_(other.cluster_), node_(other.node_), lock_(other.lock_),
        held_mode_(other.held_mode_) {
    other.cluster_ = nullptr;
  }
  LockGuard& operator=(LockGuard&&) = delete;
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  ~LockGuard() { release(); }

  /// Atomically upgrades a U hold to W (Rule 7); blocks until complete.
  void upgrade() {
    HLOCK_REQUIRE(cluster_ != nullptr && held_mode_ == proto::LockMode::kU,
                  "upgrade requires an owned U guard");
    cluster_->upgrade(node_, lock_);
    held_mode_ = proto::LockMode::kW;
  }

  /// Releases early (idempotent; the destructor then does nothing).
  void release() {
    if (cluster_ == nullptr) return;
    cluster_->unlock(node_, lock_);
    cluster_ = nullptr;
  }

  /// Mode currently held by this guard.
  proto::LockMode mode() const { return held_mode_; }

 private:
  ThreadCluster* cluster_;
  NodeId node_;
  LockId lock_;
  proto::LockMode held_mode_ = proto::LockMode::kNL;
};

/// Scoped two-level hierarchical acquisition: intent on the coarse lock,
/// a real mode on the fine one (paper §3.1's motivating pattern).
class HierGuard {
 public:
  /// Blocks until both levels are granted. `fine_mode` R pairs with IR on
  /// the coarse lock; U/W pair with IW.
  HierGuard(ThreadCluster& cluster, NodeId node, LockId coarse, LockId fine,
            proto::LockMode fine_mode)
      : coarse_(cluster, node, coarse, intent_for(fine_mode)),
        fine_(cluster, node, fine, fine_mode) {}

  /// Upgrades the fine-level U hold to W (Rule 7).
  void upgrade() { fine_.upgrade(); }

  /// Releases fine before coarse (reverse acquisition order).
  void release() {
    fine_.release();
    coarse_.release();
  }

  ~HierGuard() { release(); }
  HierGuard(const HierGuard&) = delete;
  HierGuard& operator=(const HierGuard&) = delete;

  /// The intent mode the coarse level takes for a fine-level mode.
  static proto::LockMode intent_for(proto::LockMode fine_mode) {
    switch (fine_mode) {
      case proto::LockMode::kIR:
      case proto::LockMode::kR:
        return proto::LockMode::kIR;
      case proto::LockMode::kU:
      case proto::LockMode::kIW:
      case proto::LockMode::kW:
        return proto::LockMode::kIW;
      case proto::LockMode::kNL:
        break;
    }
    throw UsageError("no intent mode corresponds to NL");
  }

 private:
  LockGuard coarse_;  // declared first: acquired first, released last
  LockGuard fine_;
};

}  // namespace hlock::runtime
