#include "runtime/sim_cluster.hpp"

#include <utility>

#include "util/check.hpp"

namespace hlock::runtime {

SimCluster::SimCluster(const SimClusterOptions& options)
    : options_(options),
      network_(options.message_latency, Rng{options.seed}.split(0xABCDu)),
      loss_rng_(Rng{options.seed}.split(0x105Eu)) {
  HLOCK_REQUIRE(options.node_count >= 1, "a cluster needs at least one node");
  HLOCK_REQUIRE(options.message_loss_probability >= 0.0 &&
                    options.message_loss_probability <= 1.0,
                "loss probability must be within [0, 1]");
  HLOCK_REQUIRE(options.initial_root.value() < options.node_count,
                "the initial root must be one of the cluster's nodes");
  HLOCK_REQUIRE(
      !(options.recovery.enabled && options.protocol == Protocol::kRaymond),
      "crash recovery is not supported for the Raymond baseline");
  clocks_.resize(options.node_count);
  engines_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    if (options.protocol == Protocol::kHierarchical) {
      engines_.push_back(std::make_unique<HierEngine>(
          self, options.initial_root, options.hier_config));
    } else if (options.protocol == Protocol::kRaymond) {
      HLOCK_REQUIRE(options.initial_root == NodeId{0},
                    "the Raymond tree is rooted at node 0");
      engines_.push_back(
          std::make_unique<RaymondEngine>(self, options.node_count));
    } else {
      engines_.push_back(
          std::make_unique<NaimiEngine>(self, options.initial_root));
    }
  }
  alive_.assign(options.node_count, 1);
  if (options.recovery.enabled) {
    managers_.reserve(options.node_count);
    for (std::size_t i = 0; i < options.node_count; ++i) {
      managers_.push_back(std::make_unique<recovery::Manager>(
          NodeId{static_cast<std::uint32_t>(i)}, options.node_count,
          options.recovery, engines_[i].get()));
    }
    halted_msgs_.resize(options.node_count);
    parked_msgs_.resize(options.node_count);
    halted_ops_.resize(options.node_count);
    stale_drops_.assign(options.node_count, 0);
    schedule_recovery_tick();
  }
}

void SimCluster::set_grant_handler(GrantHandler handler) {
  grant_handler_ = std::move(handler);
}

void SimCluster::set_message_observer(MessageObserver observer) {
  message_observer_ = std::move(observer);
}

void SimCluster::set_event_observer(EventObserver observer) {
  event_observer_ = std::move(observer);
}

LockEngine& SimCluster::engine(NodeId node) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  return *engines_[node.value()];
}

core::HierAutomaton& SimCluster::hier_automaton(NodeId node, LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kHierarchical,
                "cluster does not run the hierarchical protocol");
  return static_cast<HierEngine&>(engine(node)).automaton(lock);
}

naimi::NaimiAutomaton& SimCluster::naimi_automaton(NodeId node, LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kNaimi,
                "cluster does not run the Naimi protocol");
  return static_cast<NaimiEngine&>(engine(node)).automaton(lock);
}

raymond::RaymondAutomaton& SimCluster::raymond_automaton(NodeId node,
                                                         LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kRaymond,
                "cluster does not run the Raymond protocol");
  return static_cast<RaymondEngine&>(engine(node)).automaton(lock);
}

void SimCluster::request(NodeId node, LockId lock, LockMode mode,
                         std::uint8_t priority) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  if (!alive_[node.value()]) return;  // crashed nodes ignore the application
  if (recovery_on() && managers_[node.value()]->halted()) {
    halted_ops_[node.value()].push_back(
        {PendingOp::Kind::kRequest, lock, mode, priority});
    return;
  }
  apply(node, lock, engine(node).request(lock, mode, priority));
}

void SimCluster::release(NodeId node, LockId lock) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  if (!alive_[node.value()]) return;
  if (recovery_on() && managers_[node.value()]->halted()) {
    halted_ops_[node.value()].push_back(
        {PendingOp::Kind::kRelease, lock, LockMode::kNL, 0});
    return;
  }
  apply(node, lock, engine(node).release(lock));
}

void SimCluster::upgrade(NodeId node, LockId lock) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  if (!alive_[node.value()]) return;
  if (recovery_on() && managers_[node.value()]->halted()) {
    halted_ops_[node.value()].push_back(
        {PendingOp::Kind::kUpgrade, lock, LockMode::kNL, 0});
    return;
  }
  apply(node, lock, engine(node).upgrade(lock));
}

void SimCluster::kill_at(NodeId node, SimTime at) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  HLOCK_REQUIRE(recovery_on(),
                "kill_at() requires recovery to be enabled — without it the "
                "survivors could never regenerate the token");
  simulator_.schedule_at(at, [this, node] { crash(node); });
}

bool SimCluster::alive(NodeId node) const {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  return alive_[node.value()] != 0;
}

recovery::Manager& SimCluster::manager(NodeId node) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  HLOCK_REQUIRE(recovery_on(), "recovery is not enabled on this cluster");
  return *managers_[node.value()];
}

std::uint64_t SimCluster::stale_drops(NodeId node) const {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  return recovery_on() ? stale_drops_[node.value()] : 0;
}

std::uint64_t SimCluster::total_stale_drops() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : stale_drops_) total += n;
  return total;
}

void SimCluster::crash(NodeId node) {
  if (!alive_[node.value()]) return;  // double kill: the first one wins
  alive_[node.value()] = 0;
  // A crash-stop loses all volatile state; whatever was buffered for the
  // node dies with it.
  halted_msgs_[node.value()].clear();
  parked_msgs_[node.value()].clear();
  halted_ops_[node.value()].clear();
}

void SimCluster::schedule_recovery_tick() {
  // One shared ticker drives every live node's failure detector; it stops
  // rescheduling past the horizon so run_to_completion() terminates.
  const SimTime next = simulator_.now() + options_.recovery.heartbeat_interval;
  if (next > options_.recovery_horizon) return;
  simulator_.schedule_at(next, [this] {
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      if (!alive_[i]) continue;
      apply_outcome(NodeId{static_cast<std::uint32_t>(i)},
                    managers_[i]->on_tick(simulator_.now()));
    }
    schedule_recovery_tick();
  });
}

void SimCluster::apply(NodeId node, LockId lock, Effects&& effects) {
  // One Lamport tick per automaton step; every event of the step shares it,
  // every send ticks further (obs/lamport.hpp).
  obs::LamportClock& clock = clocks_[node.value()];
  const std::uint64_t step_time = clock.tick();
  if (event_observer_) {
    for (trace::TraceEvent& event : effects.events) {
      event.at = simulator_.now();
      event.lamport = step_time;
      event_observer_(std::move(event));
    }
  }
  for (proto::Message& message : effects.messages) {
    message.lamport = clock.tick();
    transmit(message);
  }
  if (effects.entered_cs || effects.upgraded) {
    HLOCK_INVARIANT(static_cast<bool>(grant_handler_),
                    "a grant fired but no grant handler is registered");
    grant_handler_(node, lock, effects.upgraded);
  }
}

void SimCluster::apply_outcome(NodeId node, recovery::Outcome&& outcome) {
  obs::LamportClock& clock = clocks_[node.value()];
  const std::uint64_t step_time = clock.tick();
  if (event_observer_) {
    for (trace::TraceEvent& event : outcome.events) {
      event.at = simulator_.now();
      event.lamport = step_time;
      event_observer_(std::move(event));
    }
  }
  for (proto::Message& message : outcome.messages) {
    message.lamport = clock.tick();
    transmit(message);
  }
  for (auto& [lock, effects] : outcome.fence_effects) {
    apply(node, lock, std::move(effects));
  }
  if (outcome.unhalted) replay_buffers(node);
}

void SimCluster::replay_buffers(NodeId node) {
  const std::size_t i = node.value();
  // Epoch-parked messages first (they already belong to the fenced-in
  // epoch), then the halted backlog — its pre-fence messages stale-drop
  // inside the automaton — then the buffered application operations. Each
  // goes back through the normal routing, so a message can re-park or
  // re-buffer if another campaign started meanwhile.
  std::vector<proto::Message> parked = std::move(parked_msgs_[i]);
  parked_msgs_[i].clear();
  std::vector<proto::Message> backlog = std::move(halted_msgs_[i]);
  halted_msgs_[i].clear();
  std::vector<PendingOp> ops = std::move(halted_ops_[i]);
  halted_ops_[i].clear();
  for (proto::Message& message : parked) deliver(message);
  for (proto::Message& message : backlog) deliver(message);
  for (const PendingOp& op : ops) {
    switch (op.kind) {
      case PendingOp::Kind::kRequest:
        request(node, op.lock, op.mode, op.priority);
        break;
      case PendingOp::Kind::kRelease:
        release(node, op.lock);
        break;
      case PendingOp::Kind::kUpgrade:
        upgrade(node, op.lock);
        break;
    }
  }
}

void SimCluster::transmit(const proto::Message& message) {
  metrics_.messages().add(proto::kind_of(message.payload));
  if (message_observer_) message_observer_(simulator_.now(), message);
  if (options_.message_loss_probability > 0.0 &&
      loss_rng_.chance(options_.message_loss_probability)) {
    return;  // injected loss: the message vanishes after being counted
  }
  const SimTime at =
      network_.delivery_time(simulator_.now(), message.from, message.to);
  simulator_.schedule_at(at, [this, message] { deliver(message); });
}

void SimCluster::deliver(const proto::Message& message) {
  const std::size_t to = message.to.value();
  if (!alive_[to]) return;  // crashed receivers consume nothing
  clocks_[to].observe(message.lamport);
  if (recovery_on()) {
    recovery::Manager& manager = *managers_[to];
    // Any delivery is liveness evidence; messages a node sent before its
    // crash still refresh its detector entry, exactly as over a real
    // network.
    manager.note_alive(message.from, simulator_.now());
    if (proto::is_recovery_kind(proto::kind_of(message.payload))) {
      apply_outcome(message.to,
                    manager.on_message(message, simulator_.now()));
      return;
    }
    if (manager.halted()) {
      halted_msgs_[to].push_back(message);
      return;
    }
    if (message.epoch > engine(message.to).recovery_epoch(message.lock)) {
      // The sender is fenced into a newer epoch than this node; our fence
      // is still in flight. Park the message — delivering it now would
      // make the automaton drop a perfectly valid post-fence message.
      parked_msgs_[to].push_back(message);
      return;
    }
  }
  Effects effects = engine(message.to).deliver(message);
  if (effects.stale_drop) ++stale_drops_[to];
  apply(message.to, message.lock, std::move(effects));
}

}  // namespace hlock::runtime
