// Shared experiment runner for the figure-reproduction benchmarks.
//
// One experiment = one simulated cluster + one closed-loop airline workload
// run to completion, yielding the two metrics the paper plots: protocol
// messages per lock request and mean request latency. Figure binaries sweep
// node counts / ratios / variants and print the paper's series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hier_config.hpp"
#include "lint/checker.hpp"
#include "obs/span.hpp"
#include "recovery/manager.hpp"
#include "trace/recorder.hpp"
#include "util/distributions.hpp"
#include "workload/op_plan.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::bench {

using workload::AppVariant;

/// Full parameter set of one run.
struct ExperimentConfig {
  AppVariant variant = AppVariant::kHierarchical;
  std::size_t nodes = 16;
  /// One-way network latency model (testbed preset).
  DurationDist net_latency = DurationDist::uniform(SimTime::ms(150), 0.5);
  DurationDist cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  DurationDist idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
  workload::ModeMix mix = workload::ModeMix::paper();
  std::size_t table_entries = 6;
  int ops_per_node = 60;
  std::uint64_t seed = 1;
  core::HierConfig hier_config = {};
  /// Stream every structured protocol event through the conformance linter
  /// (src/lint) during the run; hierarchical variant only. Costs event
  /// emission + checking time, so off for plain benchmarking.
  bool lint = false;
  /// Optional caller-owned sink for every structured event (hierarchical
  /// variant only; enables event emission like `lint`). Appended across
  /// seeds under run_averaged; feeds trace dumps (hlock_sim --trace-dump).
  std::vector<trace::TraceEvent>* capture_events = nullptr;
  /// Optional caller-owned span collector (hierarchical variant only;
  /// enables event emission like `lint`). Receives every structured event,
  /// assembling per-request causal spans — feeds the phase-latency table
  /// and Chrome-trace export (hlock_sim --spans / --obs-out).
  obs::SpanCollector* collect_spans = nullptr;
  /// Optional caller-owned bounded event ring (hierarchical variant only;
  /// enables event emission like `lint`). Unlike capture_events this caps
  /// memory, making it the flight-recorder source for long runs.
  trace::TraceRecorder* record_events = nullptr;
  /// Crash-recovery configuration forwarded to the simulated cluster
  /// (docs/recovery.md). Must be enabled for `kills` to be legal.
  recovery::Options recovery = {};
  /// Heartbeat horizon forwarded to SimClusterOptions::recovery_horizon;
  /// shorter than the cluster default so a recovery experiment does not
  /// spend most of its events on post-workload heartbeats.
  SimTime recovery_horizon = SimTime::ms(120'000);
  /// Crash-stop schedule forwarded to the workload driver: each entry
  /// kills one node at the given simulated time (its unfinished operations
  /// are forgiven; survivors must still drain).
  std::vector<workload::WorkloadSpec::Kill> kills;
};

/// Aggregated outcome of one run (or of several seeds averaged).
struct ExperimentResult {
  std::uint64_t ops = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t messages = 0;
  /// Messages per application operation.
  double msgs_per_op = 0;
  /// Messages per issued lock acquisition.
  double msgs_per_acq = 0;
  /// Mean end-to-end acquisition latency per operation (ms).
  double mean_latency_ms = 0;
  /// Mean latency per individual lock request (the paper's Fig. 8/10
  /// metric; equals mean_latency_ms for single-lock plans).
  double mean_request_latency_ms = 0;
  double p90_latency_ms = 0;
  double max_latency_ms = 0;
  /// Mean latency of table-write (W) operations only — the starvation
  /// indicator used by the freezing ablation (0 when no W op completed).
  double w_latency_ms = 0;
  /// Per-request latency samples (ms), concatenated across seeds; feeds
  /// distribution rendering (stats/histogram.hpp).
  std::vector<double> request_latency_samples_ms;
  /// With ExperimentConfig::lint: events checked and violations found,
  /// accumulated across seeds, plus the rendered reports of every seed
  /// that violated (empty when conforming).
  std::size_t lint_events_checked = 0;
  std::size_t lint_violation_count = 0;
  std::string lint_report;
  /// With ExperimentConfig::recovery enabled: the highest fenced epoch any
  /// survivor reached, completed recoveries (max over survivors; summed
  /// across seeds by run_averaged), stale-epoch messages dropped cluster-
  /// wide, mean suspicion-to-unhalt latency (ms) over all observed
  /// recoveries, and how many nodes the kill schedule actually crashed.
  std::uint32_t recovery_epoch = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t stale_drops = 0;
  double mean_recovery_ms = 0;
  std::size_t nodes_killed = 0;
  /// True when the run died early (an invariant fired or the driver hit its
  /// stall detector). The metrics above then cover the partial run up to
  /// the abort — still invaluable for diagnosis, which is why the runner
  /// reports them instead of losing them to the exception.
  bool aborted = false;
  /// The triggering error's message (empty when !aborted).
  std::string abort_reason;
};

/// Runs one experiment to completion.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs `seeds` experiments differing only in seed and averages every
/// metric (counts are summed).
ExperimentResult run_averaged(ExperimentConfig config, int seeds);

/// The paper's Fig. 8 metric for a variant: request latency, averaged over
/// individual lock requests for the hierarchical and pure variants
/// ("latencies are averaged over all types of requests"), and over
/// functional (whole-operation) requests for same-work — the superlinear
/// chained-acquisition cost is precisely what that series demonstrates.
double paper_latency_metric_ms(AppVariant variant,
                               const ExperimentResult& r);

/// The paper's Fig. 7/9 metric for a variant: messages per lock request.
/// For the hierarchical and pure variants this is messages per issued
/// acquisition; the same-work variant is normalized by *functional*
/// requests (its whole-table operations emulate one table-level request
/// with table_entries acquisitions) — see EXPERIMENTS.md for the
/// accounting discussion.
double paper_message_metric(AppVariant variant, const ExperimentResult& r);

/// Short label used in tables ("hierarchical", "naimi-pure", ...).
std::string series_name(AppVariant variant);

}  // namespace hlock::bench
