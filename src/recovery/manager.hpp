// Per-node crash-recovery manager: failure detection, coordinator election
// and epoch-fenced token regeneration (docs/recovery.md).
//
// One Manager runs next to each node's protocol engine, in both runtimes
// (SimCluster schedules its ticks as events, ThreadCluster drives it from a
// ticker thread). It is a pure state machine like the automatons: every
// entry point returns an Outcome the runtime applies — recovery messages to
// transmit, fence effects to apply to the engine, trace events to sink —
// which keeps the whole recovery protocol explorable by the model checker.
//
// The protocol, in one paragraph: a node that suspects a peer dead (local
// heartbeat timeout, or gossip) HALTS protocol processing — the runtime
// buffers protocol messages and application operations while halted() — and
// sends one ElectToken report per lock to the campaign's coordinator, the
// lowest live node id. The coordinator, once it holds complete reports from
// every live node for the current dead set, mints a campaign epoch that no
// previous or concurrent campaign can have produced
// (epoch = (floor(max_reported / n) + 1) * n + coordinator_id) and
// broadcasts one EpochFence per reported lock: the token's new root, the
// surviving holders and the reconstructed waiting queue. Receivers apply
// each fence to the lock's automaton and, once the campaign's fence set is
// complete, unhalt and replay their buffered traffic — whose old-epoch
// messages the automatons now drop as stale. Reports reflect every message
// their sender will ever act on in the old epoch (nothing is processed
// between report and fence), which is the safety argument: the coordinator
// accounts for every surviving hold and waiter exactly once.
//
// Assumption: crash-stop failures and an eventually-accurate detector.
// Suspicions are never retracted; a falsely suspected live node is fenced
// out (its stale-epoch messages are dropped and its automatons demote
// themselves if a fence ever reaches them). Tune Options::suspect_after
// well above the maximum message delay to make false suspicion improbable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/effects.hpp"
#include "proto/ids.hpp"
#include "proto/message.hpp"
#include "recovery/host.hpp"
#include "trace/event.hpp"
#include "util/sim_time.hpp"

namespace hlock::recovery {

/// Failure-detector and recovery tuning.
struct Options {
  /// Master switch: a disabled manager sends nothing and never suspects,
  /// so recovery adds zero message traffic to fault-free benchmarks.
  bool enabled = false;
  /// Heartbeat broadcast period.
  SimTime heartbeat_interval = SimTime::ms(100);
  /// Silence threshold before a peer is suspected dead. Must be well above
  /// heartbeat_interval plus the maximum one-way delay.
  SimTime suspect_after = SimTime::ms(1000);
  /// Fault injection for the model checker's expect-violation run: the
  /// coordinator sends half its peers a conflicting same-epoch fence that
  /// appoints a different root — the double-regeneration bug the per-epoch
  /// token-conservation check must catch.
  bool doctor_double_fence = false;
};

/// Cumulative recovery statistics of one node.
struct RecoveryCounters {
  std::uint64_t suspicions = 0;        ///< dead nodes adopted
  std::uint64_t campaigns_led = 0;     ///< fence sets minted as coordinator
  std::uint64_t fences_installed = 0;  ///< per-lock fences applied
  std::uint64_t recoveries = 0;        ///< halt -> unhalt cycles completed
};

/// What one Manager step asks the runtime to do.
struct Outcome {
  /// Recovery messages to transmit (heartbeats, suspicions, reports,
  /// fences). Never protocol messages.
  std::vector<proto::Message> messages;
  /// Per-lock automaton effects from locally applied fences; the runtime
  /// applies each exactly like a protocol step (transmit messages, sink
  /// events, surface grants).
  std::vector<std::pair<proto::LockId, core::Effects>> fence_effects;
  /// Recovery trace events (kNodeDead, from suspicion adoption) for the
  /// runtime's event sink; kFence events travel inside fence_effects.
  std::vector<trace::TraceEvent> events;
  /// The node just unhalted: the runtime must replay its buffered protocol
  /// messages and application operations now.
  bool unhalted = false;

  /// Folds another outcome's content in (steps that cascade internally).
  void merge(Outcome&& other);
};

/// See file comment.
class Manager {
 public:
  /// `host` must outlive the manager; `node_count` is the cluster size
  /// (node ids are [0, node_count)).
  Manager(NodeId self, std::size_t node_count, Options options, Host* host);

  bool enabled() const { return options_.enabled; }
  NodeId self() const { return self_; }

  /// True while protocol processing is halted (suspicion raised, campaign
  /// fences not yet complete). The runtime must buffer protocol messages
  /// and application operations, and replay them on Outcome::unhalted.
  bool halted() const { return halted_; }

  /// Nodes this manager believes crashed, ascending.
  const std::vector<NodeId>& dead() const { return dead_; }
  bool is_dead(NodeId node) const;

  /// Highest recovery epoch this node has minted or applied.
  std::uint32_t current_epoch() const { return max_epoch_seen_; }

  const RecoveryCounters& counters() const { return counters_; }

  /// Completed recovery durations (halt to unhalt), milliseconds, in
  /// completion order — the hlock_recovery_ms histogram's samples.
  const std::vector<double>& recovery_durations_ms() const {
    return recovery_ms_;
  }

  /// Records that any message from `from` arrived (refreshes the failure
  /// detector). Runtimes call this for every delivery, so protocol traffic
  /// doubles as liveness evidence.
  void note_alive(NodeId from, SimTime now);

  /// Periodic driver: emits due heartbeats and raises timeout suspicions.
  /// Runtimes call it roughly every heartbeat_interval.
  Outcome on_tick(SimTime now);

  /// Delivers one recovery message (is_recovery_kind). Protocol messages
  /// never come here.
  Outcome on_message(const proto::Message& message, SimTime now);

  /// Directly injects a suspicion (model checker and tests; the timeout
  /// path funnels into the same transition).
  Outcome suspect(NodeId dead, SimTime now);

  /// Canonical serialization of all behavior-relevant manager state (model
  /// checker dedup). Excludes clocks and counters.
  std::string fingerprint() const;

 private:
  /// One peer's report set for the current campaign.
  struct PeerReports {
    /// lock_count announced by the peer's reports; UINT32_MAX until the
    /// first report arrives. 0 = lockless report, complete by itself.
    std::uint32_t expected = UINT32_MAX;
    /// Reports received, keyed by lock id value (deterministic order).
    std::map<std::uint32_t, proto::ElectToken> locks;

    bool complete() const {
      return expected != UINT32_MAX && locks.size() == expected;
    }
  };

  void adopt_dead(NodeId node, SimTime now, Outcome& out);
  void send_reports(SimTime now, Outcome& out);
  void ingest_report(NodeId from, proto::LockId lock,
                     const proto::ElectToken& report);
  /// Coordinator: mints and broadcasts the campaign's fences once every
  /// live node's report set is complete.
  void maybe_mint(SimTime now, Outcome& out);
  void apply_fence(proto::LockId lock, const proto::EpochFence& fence,
                   SimTime now, Outcome& out);
  void unhalt(SimTime now, Outcome& out);
  /// Campaign coordinator: the lowest node id not believed dead.
  NodeId coordinator() const;
  std::vector<NodeId> live_peers() const;
  proto::Message make_message(NodeId to, proto::LockId lock,
                              proto::Payload payload) const;

  const NodeId self_;
  const std::size_t node_count_;
  const Options options_;
  Host* const host_;

  std::vector<NodeId> dead_;  ///< sorted; the campaign identity
  bool halted_ = false;
  SimTime halt_started_{};
  std::uint32_t max_epoch_seen_ = 0;

  // Failure detector.
  std::vector<SimTime> last_heard_;
  SimTime next_heartbeat_{};

  // Coordinator state: reports gathered for the current dead_ set.
  std::map<std::uint32_t, PeerReports> reports_;  ///< by node id value

  // Receiver state: fences collected for the current dead_ set.
  std::set<std::uint32_t> fences_received_;  ///< fence_index values
  std::uint32_t fences_expected_ = UINT32_MAX;

  RecoveryCounters counters_;
  std::vector<double> recovery_ms_;
};

}  // namespace hlock::recovery
