#include "runtime/instrumented_engine.hpp"

#include <string>
#include <utility>

namespace hlock::runtime {

namespace {
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

InstrumentedEngine::InstrumentedEngine(std::unique_ptr<LockEngine> inner,
                                       telemetry::Registry& registry,
                                       Protocol protocol, NodeId self)
    : inner_(std::move(inner)), registry_(registry), self_(self) {
  const std::string proto_label = to_string(protocol);
  const std::string node_label = std::to_string(self.value());
  const auto name = [&](std::string_view base,
                        std::initializer_list<
                            std::pair<std::string_view, std::string>>
                            extra = {}) {
    std::string full = telemetry::labeled(
        base, {{"proto", proto_label}, {"node", node_label}});
    if (extra.size() != 0) {
      // splice extra labels before the closing brace, preserving order
      full.pop_back();
      for (const auto& [key, value] : extra) {
        full += ',';
        full += key;
        full += "=\"";
        full += value;
        full += '"';
      }
      full += '}';
    }
    return full;
  };

  for (const proto::LockMode mode : proto::kAllModes) {
    const std::size_t i = proto::mode_index(mode);
    requests_[i] = &registry.counter(name(
        "hlock_engine_requests_total", {{"mode", proto::to_string(mode)}}));
    grants_[i] = &registry.counter(name(
        "hlock_engine_grants_total", {{"mode", proto::to_string(mode)}}));
  }
  for (std::size_t i = 0; i < proto::kMessageKindCount; ++i) {
    sent_[i] = &registry.counter(name(
        "hlock_messages_sent_total",
        {{"kind", proto::to_string(static_cast<proto::MessageKind>(i))}}));
  }
  releases_ = &registry.counter(name("hlock_engine_releases_total"));
  upgrades_ = &registry.counter(name("hlock_engine_upgrades_total"));
  forwards_ = &registry.counter(name("hlock_engine_forwards_total"));
  freezes_ = &registry.counter(name("hlock_engine_freezes_total"));
  wait_ms_ = &registry.histogram(name("hlock_wait_ms"));
  hold_ms_ = &registry.histogram(name("hlock_hold_ms"));
}

telemetry::Gauge& InstrumentedEngine::token_gauge(LockId lock) {
  const auto it = token_gauges_.find(lock);
  if (it != token_gauges_.end()) {
    return *it->second;
  }
  telemetry::Gauge& gauge = registry_.gauge(telemetry::labeled(
      "hlock_token_location", {{"lock", std::to_string(lock.value())}}));
  token_gauges_.emplace(lock, &gauge);
  return gauge;
}

void InstrumentedEngine::observe(LockId lock, const Effects& effects) {
  for (const proto::Message& message : effects.messages) {
    const proto::MessageKind kind = proto::kind_of(message.payload);
    sent_[static_cast<std::size_t>(kind)]->inc();
    switch (kind) {
      case proto::MessageKind::kHierRequest:
        if (std::get<proto::HierRequest>(message.payload).requester !=
            self_) {
          forwards_->inc();
        }
        break;
      case proto::MessageKind::kNaimiRequest:
        if (std::get<proto::NaimiRequest>(message.payload).requester !=
            self_) {
          forwards_->inc();
        }
        break;
      case proto::MessageKind::kHierFreeze:
        freezes_->inc();
        break;
      case proto::MessageKind::kHierToken:
      case proto::MessageKind::kNaimiToken:
        // The token moves to the destination; the sender knows first.
        token_gauge(message.lock)
            .set(static_cast<double>(message.to.value()));
        break;
      default:
        break;
    }
  }
  if (effects.entered_cs) {
    const auto it = pending_.find(lock);
    if (it != pending_.end()) {
      grants_[proto::mode_index(it->second.mode)]->inc();
      wait_ms_->record(ms_since(it->second.since));
      pending_.erase(it);
    } else {
      grants_[proto::mode_index(proto::LockMode::kNL)]->inc();
    }
    held_since_[lock] = Clock::now();
  }
  if (effects.upgraded) {
    upgrades_->inc();
  }
}

Effects InstrumentedEngine::request(LockId lock, LockMode mode,
                                    std::uint8_t priority) {
  requests_[proto::mode_index(mode)]->inc();
  pending_[lock] = PendingRequest{mode, Clock::now()};
  Effects effects = inner_->request(lock, mode, priority);
  observe(lock, effects);
  return effects;
}

Effects InstrumentedEngine::release(LockId lock) {
  releases_->inc();
  const auto it = held_since_.find(lock);
  if (it != held_since_.end()) {
    hold_ms_->record(ms_since(it->second));
    held_since_.erase(it);
  }
  Effects effects = inner_->release(lock);
  observe(lock, effects);
  return effects;
}

Effects InstrumentedEngine::upgrade(LockId lock) {
  Effects effects = inner_->upgrade(lock);
  observe(lock, effects);
  return effects;
}

Effects InstrumentedEngine::deliver(const proto::Message& message) {
  Effects effects = inner_->deliver(message);
  const proto::MessageKind kind = proto::kind_of(message.payload);
  if (kind == proto::MessageKind::kHierToken ||
      kind == proto::MessageKind::kNaimiToken) {
    // The token landed here (overwrites the sender's in-flight value with
    // the same node id — idempotent, but this side also covers tokens
    // arriving from uninstrumented peers).
    token_gauge(message.lock).set(static_cast<double>(self_.value()));
  }
  observe(message.lock, effects);
  return effects;
}

bool InstrumentedEngine::holds(LockId lock) const {
  return inner_->holds(lock);
}

std::size_t InstrumentedEngine::queued_requests() const {
  return inner_->queued_requests();
}

std::size_t InstrumentedEngine::tokens_held() const {
  return inner_->tokens_held();
}

std::vector<LockId> InstrumentedEngine::recovery_locks() {
  return inner_->recovery_locks();
}

recovery::LockReport InstrumentedEngine::report(LockId lock) {
  return inner_->report(lock);
}

Effects InstrumentedEngine::install_fence(LockId lock,
                                          const proto::EpochFence& fence) {
  Effects effects = inner_->install_fence(lock, fence);
  observe(lock, effects);
  return effects;
}

std::uint32_t InstrumentedEngine::recovery_epoch(LockId lock) {
  return inner_->recovery_epoch(lock);
}

void InstrumentedEngine::set_default_origin(NodeId root, std::uint32_t epoch) {
  inner_->set_default_origin(root, epoch);
}

}  // namespace hlock::runtime
