// Feature configuration for the hierarchical protocol.
//
// The paper attributes its message savings to several distinct mechanisms
// (local queueing, grants by non-token copyset members, dynamic path
// compression) and its fairness to mode freezing. Each is independently
// switchable so the ablation benchmark (bench/ablation_features) can
// quantify its contribution; production use keeps all of them on.
#pragma once

namespace hlock::core {

/// Protocol feature switches. Defaults reproduce the full paper protocol.
struct HierConfig {
  /// Rule 4.1 / Table 1(c): non-token nodes with a pending request queue
  /// matching requests locally instead of forwarding them. Off: every
  /// ungrantable request is forwarded toward the token.
  bool local_queueing = true;

  /// Rule 3.1 / Table 1(b): non-token copyset members grant compatible
  /// weaker requests themselves (including Rule 2 message-free self-grants).
  /// Off: all grants are performed by the token node.
  bool child_grants = true;

  /// Dynamic path compression for request propagation: a fully detached
  /// forwarder (no hold, no ownership, no pending request, empty queue)
  /// re-points its probable-owner link at the requester, Naimi-style.
  ///
  /// Soundness requires one amendment to Table 1(c): while a node has a
  /// pending request it queues EVERY incoming request (the paper's table
  /// forwards non-matching modes). In Naimi's protocol reversal is safe
  /// because the requester becomes the tree root and absorbs traffic; here
  /// a requester may end up a mere copyset child, and forwarding from it
  /// along its stale parent link could cycle back through nodes that
  /// already re-pointed at it. Queueing while pending makes requesters
  /// absorbing, restoring the acyclicity argument: every reversal link
  /// points to a newer requester, which either absorbs (pending) or routes
  /// via its granter chain to the token (granted). This also serves the
  /// paper's stated aim "to queue as many requests as possible to suppress
  /// message passing overhead". Off: literal Table 1(c), no reversal.
  bool path_compression = true;

  /// Rule 6 / Table 1(d): freeze modes that would let late compatible
  /// requests bypass queued incompatible ones. Off: FIFO ordering across
  /// incompatible modes is no longer enforced and writers can starve.
  bool freezing = true;

  /// Emit structured trace events (trace/event.hpp) in Effects::events for
  /// every rule application — the input of the conformance linter
  /// (src/lint). Off by default: hot paths pay nothing for tracing.
  bool trace_events = false;
};

}  // namespace hlock::core
