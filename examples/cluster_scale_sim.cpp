// Large-scale cluster simulation: the paper's IBM SP experiment (§4.2) as
// a library user would run it — 120 nodes, the airline workload, and a
// summary of the message overhead and latency the protocol delivers.
//
// Demonstrates the simulation half of the public API: SimCluster +
// SimWorkloadDriver + MetricsRegistry, plus the post-run invariant sweep.
//
// Build & run:  ./build/examples/cluster_scale_sim
#include <cstdio>

#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "workload/sim_driver.hpp"

using namespace hlock;

int main() {
  constexpr std::size_t kNodes = 120;

  runtime::SimClusterOptions cluster_options;
  cluster_options.node_count = kNodes;
  cluster_options.protocol = runtime::Protocol::kHierarchical;
  cluster_options.message_latency = sim::ibm_sp_preset().message_latency;
  cluster_options.seed = 2026;
  runtime::SimCluster cluster{cluster_options};

  workload::WorkloadSpec spec;
  spec.variant = workload::AppVariant::kHierarchical;
  spec.node_count = kNodes;
  spec.ops_per_node = 50;
  spec.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);  // ratio 10
  spec.seed = 7;

  workload::SimWorkloadDriver driver{cluster, spec};

  std::printf("simulating %zu nodes x %d operations of the airline "
              "workload (IBM SP latency model)...\n",
              kNodes, spec.ops_per_node);
  driver.run();

  const auto& stats = driver.stats();
  const auto op_latency = stats.op_latency.summarize();
  const auto request_latency = stats.acq_latency.summarize();

  std::printf("\nsimulated time     : %s\n",
              to_string(cluster.simulator().now()).c_str());
  std::printf("events executed    : %llu\n",
              static_cast<unsigned long long>(
                  cluster.simulator().events_executed()));
  std::printf("operations         : %llu\n",
              static_cast<unsigned long long>(stats.ops));
  std::printf("lock requests      : %llu\n",
              static_cast<unsigned long long>(stats.acquisitions));
  std::printf("protocol messages  : %llu  (%.2f per request)\n",
              static_cast<unsigned long long>(
                  cluster.metrics().messages().total()),
              static_cast<double>(cluster.metrics().messages().total()) /
                  static_cast<double>(stats.acquisitions));
  std::printf("request latency    : mean %.2f ms, p90 %.2f ms, max %.2f ms\n",
              request_latency.mean, request_latency.p90,
              request_latency.max);
  std::printf("operation latency  : mean %.2f ms, p90 %.2f ms\n",
              op_latency.mean, op_latency.p90);
  std::printf("upgrades completed : %llu (mean wait %.2f ms)\n",
              static_cast<unsigned long long>(stats.upgrade_latency.count()),
              stats.upgrade_latency.summarize().mean);

  std::printf("\nrequest latency distribution (log-scale buckets):\n");
  stats::HistogramOptions histogram;
  histogram.buckets = 12;
  histogram.log_scale = true;
  std::fputs(
      stats::render_histogram(stats.acq_latency.samples_ms(), histogram)
          .c_str(),
      stdout);

  const auto report = runtime::check_quiescent_structure(
      cluster, workload::all_locks(spec.table_entries));
  std::printf("post-run invariants: %s\n",
              report.ok() ? "all hold" : report.to_string().c_str());
  return report.ok() ? 0 : 1;
}
