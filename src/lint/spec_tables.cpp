#include "lint/spec_tables.hpp"

namespace hlock::lint {

ModeSemantics semantics(LockMode m) {
  switch (m) {
    case LockMode::kNL:
      return {};
    case LockMode::kIR:
      return {.reads_some = true};
    case LockMode::kR:
      return {.reads_all = true};
    case LockMode::kU:
      return {.reads_all = true, .upgrade_claim = true};
    case LockMode::kIW:
      return {.reads_some = true, .writes_some = true};
    case LockMode::kW:
      return {.writes_all = true};
  }
  return {};
}

bool spec_incompatible(LockMode a, LockMode b) {
  if (a == LockMode::kNL || b == LockMode::kNL) return false;
  const ModeSemantics sa = semantics(a);
  const ModeSemantics sb = semantics(b);
  // A full write tolerates no concurrent access of any kind.
  if (sa.writes_all || sb.writes_all) return true;
  // A partial write invalidates any full-granule view (read or write).
  if (sa.writes_some && (sb.reads_all || sb.writes_all)) return true;
  if (sb.writes_some && (sa.reads_all || sa.writes_all)) return true;
  // The upgrade right is exclusive: two claims cannot coexist.
  if (sa.upgrade_claim && sb.upgrade_claim) return true;
  return false;
}

ModeSet spec_compatible_set(LockMode m) {
  ModeSet out;
  for (LockMode other : proto::kRealModes) {
    if (spec_compatible(m, other)) out.insert(other);
  }
  return out;
}

ModeSet spec_incompatible_set(LockMode m) {
  ModeSet out;
  for (LockMode other : proto::kRealModes) {
    if (spec_incompatible(m, other)) out.insert(other);
  }
  return out;
}

int spec_strength(LockMode m) { return spec_incompatible_set(m).size(); }

namespace {

/// True if every mode in `a` is also in `b`.
bool subset(ModeSet a, ModeSet b) { return (a | b) == b; }

/// True if `m`'s grant can only ever arrive by token transfer: no mode
/// compatible with `m` is strong enough to copy-grant it (Table 1(b)), so
/// no copyset member can serve it. Holds exactly for U and W.
bool always_transfers(LockMode m) {
  for (LockMode owner : proto::kRealModes) {
    if (spec_compatible(owner, m) && spec_non_token_can_grant(owner, m)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool spec_non_token_can_grant(LockMode owned, LockMode requested) {
  // Only real modes are requestable; owned == kNL falls out of the
  // inclusion test (its compatible set is all five real modes).
  if (requested == LockMode::kNL) return false;
  return spec_compatible(owned, requested) &&
         subset(spec_compatible_set(owned), spec_compatible_set(requested));
}

bool spec_token_grant_transfers(LockMode owned, LockMode requested) {
  return !subset(spec_compatible_set(owned), spec_compatible_set(requested));
}

SpecQueueOrForward spec_queue_or_forward(LockMode pending,
                                        LockMode requested) {
  if (pending == LockMode::kNL) return SpecQueueOrForward::kForward;
  // Piggybacking: once granted, the node owns `pending` and Table 1(b)
  // authorizes re-granting the identical self-compatible mode.
  if (requested == pending && spec_compatible(pending, pending)) {
    return SpecQueueOrForward::kQueue;
  }
  // Token-bound: the node's own grant will bring the token, making it the
  // arbiter; requests that cannot overtake it (same mode or conflicting)
  // wait here instead of chasing the token across the network.
  if (always_transfers(pending) &&
      (requested == pending || spec_incompatible(pending, requested))) {
    return SpecQueueOrForward::kQueue;
  }
  return SpecQueueOrForward::kForward;
}

ModeSet spec_freeze_set(LockMode owned, LockMode queued) {
  if (spec_compatible(owned, queued)) return {};
  return spec_compatible_set(owned) & spec_incompatible_set(queued);
}

}  // namespace hlock::lint
