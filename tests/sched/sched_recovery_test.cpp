// Failure-detector races under the deterministic schedule explorer
// (docs/sched.md, docs/recovery.md): two surviving nodes run their
// recovery::Managers on concurrent threads against a mutex-guarded message
// router, and the explorer walks the interleavings the randomized suites
// only sometimes hit — simultaneous suspicion of the same victim, a late
// heartbeat from the dead node landing mid-campaign, and two campaigns
// over DIFFERENT dead sets racing until gossip merges them. Every schedule
// must converge: all survivors unhalted, agreeing on the dead set and the
// epoch, with exactly one regenerated token.
#include <array>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "proto/message.hpp"
#include "recovery/manager.hpp"
#include "sched/harness.hpp"
#include "tests/sched/sched_test.hpp"
#include "util/sync.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

/// Single-lock protocol engine stand-in: serves a fixed report and mirrors
/// whatever a fence installs. The managers under test never notice the
/// difference — everything protocol-specific hides behind recovery::Host.
class RaceHost : public recovery::Host {
 public:
  explicit RaceHost(NodeId self) : self_(self) {}

  std::vector<LockId> recovery_locks() override { return {LockId{0}}; }
  recovery::LockReport report(LockId) override { return report_; }
  core::Effects install_fence(LockId,
                              const proto::EpochFence& fence) override {
    report_.epoch = fence.epoch;
    report_.has_token = fence.new_root == self_;
    ++fences_installed_;
    return {};
  }
  std::uint32_t recovery_epoch(LockId) override { return report_.epoch; }
  void set_default_origin(NodeId, std::uint32_t) override {}

  recovery::LockReport report_;
  int fences_installed_ = 0;

 private:
  const NodeId self_;
};

/// A cluster of managers wired through one mutex-guarded router. The mutex
/// is the sync point the schedule explorer serializes on, so delivery
/// order across the live nodes' threads is what gets explored.
template <std::size_t kNodes>
class RaceCluster {
 public:
  explicit RaceCluster(std::vector<std::uint32_t> dead)
      : dead_(std::move(dead)) {
    recovery::Options options;
    options.enabled = true;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      hosts_.emplace_back(NodeId{n});
    }
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      managers_.emplace_back(NodeId{n}, kNodes, options, &hosts_[n]);
    }
  }

  bool is_victim(std::uint32_t node) const {
    return std::find(dead_.begin(), dead_.end(), node) != dead_.end();
  }

  /// Pre-loads a message (e.g. the victim's in-flight heartbeat).
  void preload(std::uint32_t to, Message message) {
    inbox_[to].push_back(std::move(message));
  }

  /// Runs `node`'s side: raise the initial suspicion, then drain deliveries
  /// until the whole cluster is quiescent. Bounded so a livelocked
  /// interleaving fails the test instead of hanging the explorer.
  void run_node(std::uint32_t node, std::uint32_t first_suspect) {
    {
      MutexLock lock(mu_);
      route(recovery::Outcome{
          managers_[node].suspect(NodeId{first_suspect}, SimTime{})});
      ++started_;
    }
    for (int steps = 0; steps < 10'000; ++steps) {
      MutexLock lock(mu_);
      if (!inbox_[node].empty()) {
        const Message message = std::move(inbox_[node].front());
        inbox_[node].pop_front();
        route(managers_[node].on_message(message, SimTime{}));
        continue;
      }
      if (quiescent()) return;
    }
    ADD_FAILURE() << "node" << node << " never reached quiescence";
  }

  recovery::Manager& manager(std::uint32_t node) { return managers_[node]; }
  RaceHost& host(std::uint32_t node) { return hosts_[node]; }

 private:
  /// All initial suspicions raised, no message in flight, nobody halted:
  /// nothing can produce further traffic.
  bool quiescent() const {
    if (started_ != kNodes - dead_.size()) return false;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      if (is_victim(n)) continue;
      if (!inbox_[n].empty() || managers_[n].halted()) return false;
    }
    return true;
  }

  void route(recovery::Outcome&& outcome) {
    for (Message& message : outcome.messages) {
      const std::uint32_t to = message.to.value();
      if (is_victim(to)) continue;  // crashed: the message is lost
      inbox_[to].push_back(std::move(message));
    }
    // fence_effects are empty by construction (RaceHost returns none) and
    // unhalt replay is the runtime's job; the router only moves messages.
  }

  Mutex mu_{"sched_recovery.router"};
  const std::vector<std::uint32_t> dead_;
  std::array<std::deque<Message>, kNodes> inbox_;
  std::vector<RaceHost> hosts_;
  std::vector<recovery::Manager> managers_;
  std::size_t started_ = 0;
};

/// Convergence contract checked after every explored schedule.
template <std::size_t kNodes>
void expect_converged(RaceCluster<kNodes>& cluster,
                      const std::vector<std::uint32_t>& dead) {
  std::uint32_t epoch = 0;
  int tokens = 0;
  bool first = true;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    if (cluster.is_victim(n)) continue;
    auto& manager = cluster.manager(n);
    EXPECT_FALSE(manager.halted()) << "node" << n;
    for (const std::uint32_t d : dead) {
      EXPECT_TRUE(manager.is_dead(NodeId{d}))
          << "node" << n << " missed node" << d << "'s death";
    }
    EXPECT_GT(manager.current_epoch(), 0u) << "node" << n;
    if (first) {
      epoch = manager.current_epoch();
      first = false;
    } else {
      EXPECT_EQ(manager.current_epoch(), epoch)
          << "node" << n << " disagrees on the epoch";
    }
    tokens += cluster.host(n).report_.has_token ? 1 : 0;
  }
  EXPECT_EQ(tokens, 1) << "the fenced epoch must mint exactly one token";
}

TEST(SchedRecovery, ConcurrentSuspicionsOfTheSameVictim) {
  // Both survivors suspect node1 simultaneously; suspicion gossip, report
  // collection and fence broadcast interleave freely. Every schedule must
  // end in one agreed campaign.
  sched_test::explore([] {
    RaceCluster<3> cluster({1});
    sched::Thread peer("peer", [&] { cluster.run_node(2, 1); });
    cluster.run_node(0, 1);
    peer.join();
    expect_converged(cluster, {1});
  });
}

TEST(SchedRecovery, LateHeartbeatFromTheDeadDoesNotResurrect) {
  // The victim's last heartbeat was in flight when it crashed. Wherever
  // its delivery lands relative to the suspicion and the campaign, node1
  // must stay dead and the recovery must complete.
  sched_test::explore([] {
    RaceCluster<3> cluster({1});
    cluster.preload(
        0, Message{NodeId{1}, NodeId{0}, LockId{0}, proto::Heartbeat{}});
    cluster.preload(
        2, Message{NodeId{1}, NodeId{2}, LockId{0}, proto::Heartbeat{}});
    sched::Thread peer("peer", [&] { cluster.run_node(2, 1); });
    cluster.run_node(0, 1);
    peer.join();
    expect_converged(cluster, {1});
  });
}

TEST(SchedRecovery, RacingCampaignsOverDifferentDeadSetsMerge) {
  // Four nodes, two dead: node0 first suspects node1 while node2 first
  // suspects node3, so two campaigns with DIFFERENT dead sets race until
  // the cross-gossip merges them into the {1,3} campaign. The epoch
  // formula guarantees the merged campaign outbids both partial ones.
  sched_test::explore([] {
    RaceCluster<4> cluster({1, 3});
    sched::Thread peer("peer", [&] { cluster.run_node(2, 3); });
    cluster.run_node(0, 1);
    peer.join();
    expect_converged(cluster, {1, 3});
  });
}

TEST(SchedRecovery, SurvivingHolderKeepsItsTokenThroughTheRace) {
  // Node0 holds the token and survives; whatever the interleaving, every
  // fence must re-root at node0 — a campaign must never move a live
  // token.
  sched_test::explore([] {
    RaceCluster<3> cluster({1});
    cluster.host(0).report_.has_token = true;
    cluster.host(0).report_.held = LockMode::kW;
    cluster.host(2).report_.waiting = true;
    cluster.host(2).report_.wait_mode = LockMode::kW;
    sched::Thread peer("peer", [&] { cluster.run_node(2, 1); });
    cluster.run_node(0, 1);
    peer.join();
    expect_converged(cluster, {1});
    EXPECT_TRUE(cluster.host(0).report_.has_token);
    EXPECT_FALSE(cluster.host(2).report_.has_token);
  });
}

}  // namespace
}  // namespace hlock
