// The existing concurrency stress scenarios, re-run as *explored
// schedules*: each test body executes under the deterministic schedule
// explorer across a batch of seeds (tests/sched/sched_test.hpp), so the
// shutdown / close / reconnect races the stress suites only sometimes hit
// are walked systematically — and any interleaving that deadlocks or
// fails prints its replay seed. See docs/sched.md.
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_cluster.hpp"
#include "tests/sched/sched_test.hpp"
#include "trace/recorder.hpp"
#include "transport/faulty_transport.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/mailbox.hpp"
#include "transport/tcp_transport.hpp"
#include "util/sync_observer.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

Message make_message(std::uint32_t from, std::uint32_t to,
                     std::uint64_t seq) {
  return Message{NodeId{from}, NodeId{to}, LockId{0},
                 proto::NaimiRequest{NodeId{from}, seq}};
}

TEST(SchedExploration, ThreadClusterLockUnlockAndShutdown) {
  sched_test::ExploreOptions options;
  options.seeds = 8;  // a live cluster is the heaviest body in this suite
  sched_test::explore(
      [] {
        runtime::ThreadClusterOptions cluster_options;
        cluster_options.node_count = 2;
        cluster_options.engine_shards = 2;
        runtime::ThreadCluster cluster{cluster_options};
        sched::Thread client("client", [&cluster] {
          for (int i = 0; i < 2; ++i) {
            cluster.lock(NodeId{1}, LockId{7}, LockMode::kW);
            cluster.unlock(NodeId{1}, LockId{7});
          }
        });
        cluster.lock(NodeId{0}, LockId{7}, LockMode::kW);
        cluster.unlock(NodeId{0}, LockId{7});
        client.join();
        // Destruction races the receivers draining their mailboxes — the
        // shutdown handshake the stress suite hammers nondeterministically.
      },
      options);
}

TEST(SchedExploration, MailboxPopUntilRacesPushAndClose) {
  sched_test::explore([] {
    transport::Mailbox mailbox;
    std::optional<Message> popped;
    sched::Thread consumer("consumer", [&mailbox, &popped] {
      popped = mailbox.pop_until(transport::Mailbox::Clock::now() +
                                 std::chrono::milliseconds(250));
    });
    mailbox.push(make_message(0, 1, 1), transport::Mailbox::Clock::now());
    sched::yield_point("test.before-close");
    mailbox.close();
    consumer.join();
    // Whatever the interleaving, the consumer must come back; it may see
    // the message or the close, but a pushed-before-close message that it
    // kept waiting past is a lost wakeup.
    if (popped.has_value()) {
      EXPECT_EQ(std::get<proto::NaimiRequest>(popped->payload).seq, 1u);
    }
  });
}

TEST(SchedExploration, MailboxCloseWakesBlockedPop) {
  sched_test::explore([] {
    transport::Mailbox mailbox;
    sched::Thread consumer("consumer", [&mailbox] {
      // Untimed pop: only the close can unblock it. A schedule where the
      // close's notify is lost deadlocks here — and the explorer proves it.
      EXPECT_FALSE(mailbox.pop().has_value());
    });
    mailbox.close();
    consumer.join();
  });
}

TEST(SchedExploration, TraceRecorderConcurrentRecordAndSnapshot) {
  sched_test::explore([] {
    trace::TraceRecorder recorder{64};
    sched::Thread writer("writer", [&recorder] {
      for (int i = 0; i < 4; ++i) {
        recorder.record_enter_cs(SimTime::ms(i), NodeId{1});
        recorder.record_exit_cs(SimTime::ms(i), NodeId{1});
      }
    });
    for (int i = 0; i < 4; ++i) {
      recorder.note(SimTime::ms(i), NodeId{0}, "snapshot-race");
      (void)recorder.events();
    }
    writer.join();
    EXPECT_EQ(recorder.events().size(), 12u);
  });
}

TEST(SchedExploration, FaultyTransportPumpRacesSendAndShutdown) {
  sched_test::ExploreOptions options;
  options.seeds = 8;
  sched_test::explore(
      [] {
        transport::FaultPlan plan;
        plan.seed = 7;
        plan.delay_probability = 0.5;  // force traffic through the pump wire
        plan.delay = DurationDist::constant(SimTime::us(50));
        transport::FaultyTransport transport{
            std::make_unique<transport::InProcTransport>(
                transport::InProcOptions{2}),
            plan};
        sched::Thread sender("sender", [&transport] {
          for (std::uint64_t seq = 0; seq < 3; ++seq) {
            transport.send(make_message(0, 1, seq));
          }
        });
        for (std::uint64_t seq = 0; seq < 3; ++seq) {
          const auto received =
              transport.recv_for(NodeId{1}, std::chrono::milliseconds(5000));
          ASSERT_TRUE(received.has_value()) << "message " << seq;
          EXPECT_EQ(std::get<proto::NaimiRequest>(received->payload).seq,
                    seq);
        }
        sender.join();
        // Destructor shutdown races the pump thread's forwarding loop.
      },
      options);
}

TEST(SchedExploration, TcpReconnectAfterSeveredChannel) {
  // Real sockets keep their own kernel-side timing, so TCP schedules are
  // explored best-effort: the scheduler still controls every thread at its
  // sync points, but replay identity is not guaranteed (docs/sched.md).
  sched_test::ExploreOptions options;
  options.seeds = 4;
  sched_test::explore(
      [] {
        transport::TcpTransport transport{2};
        transport.send(make_message(0, 1, 1));
        const auto first =
            transport.recv_for(NodeId{1}, std::chrono::milliseconds(5000));
        ASSERT_TRUE(first.has_value());
        ASSERT_TRUE(transport.sever_channel(NodeId{0}, NodeId{1}));
        sched::Thread sender("sender", [&transport] {
          transport.send(make_message(0, 1, 2));
        });
        const auto second =
            transport.recv_for(NodeId{1}, std::chrono::milliseconds(5000));
        ASSERT_TRUE(second.has_value()) << "send did not recover";
        EXPECT_EQ(std::get<proto::NaimiRequest>(second->payload).seq, 2u);
        sender.join();
      },
      options);
}

}  // namespace
}  // namespace hlock
