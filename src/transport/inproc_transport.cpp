#include "transport/inproc_transport.hpp"

#include <algorithm>

#include "proto/codec.hpp"
#include "util/check.hpp"

namespace hlock::transport {

InProcTransport::InProcTransport(const InProcOptions& options)
    : options_(options), latency_rng_(Rng{options.seed}.split(0x7A57u)) {
  HLOCK_REQUIRE(options.node_count >= 1,
                "a transport needs at least one node");
  mailboxes_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& InProcTransport::mailbox(proto::NodeId node) {
  HLOCK_REQUIRE(node.value() < mailboxes_.size(), "unknown node id");
  return *mailboxes_[node.value()];
}

Mailbox::Clock::time_point InProcTransport::schedule_delivery(
    proto::NodeId from, proto::NodeId to) {
  MutexLock guard(latency_mutex_);
  const SimTime latency = options_.latency.sample(latency_rng_);
  Mailbox::Clock::time_point deliver_at =
      Mailbox::Clock::now() + std::chrono::nanoseconds(latency.count_ns());
  auto& front = channel_front_[{from, to}];
  if (deliver_at <= front) {
    deliver_at = front + std::chrono::nanoseconds(1);
  }
  front = deliver_at;
  return deliver_at;
}

void InProcTransport::send(const proto::Message& message) {
  proto::Message to_deliver = message;
  if (options_.codec_roundtrip) {
    // One scratch buffer per sending thread: capacity persists across
    // sends, so the steady state allocates nothing for the wire image.
    thread_local std::vector<std::byte> scratch;
    scratch.clear();
    proto::encode_into(message, scratch);
    std::optional<proto::Message> decoded = proto::decode(scratch);
    HLOCK_INVARIANT(decoded.has_value() && *decoded == message,
                    "codec round-trip corrupted a message");
    to_deliver = std::move(*decoded);
    bytes_.fetch_add(scratch.size(), std::memory_order_relaxed);
  }

  const Mailbox::Clock::time_point deliver_at =
      schedule_delivery(message.from, message.to);
  mailbox(message.to).push(std::move(to_deliver), deliver_at);
  sent_.fetch_add(1, std::memory_order_relaxed);
}

void InProcTransport::send_coalesced(std::vector<proto::Message>& messages,
                                     std::size_t begin, std::size_t end) {
  const proto::NodeId from = messages[begin].from;
  const proto::NodeId to = messages[begin].to;
  std::vector<proto::Message> group;
  if (options_.codec_roundtrip) {
    thread_local std::vector<std::byte> scratch;
    scratch.clear();
    proto::encode_batch_into(
        std::span<const proto::Message>{messages.data() + begin,
                                        end - begin},
        scratch);
    std::optional<std::vector<proto::Message>> decoded =
        proto::decode_batch(scratch);
    HLOCK_INVARIANT(decoded.has_value() && decoded->size() == end - begin &&
                        std::equal(decoded->begin(), decoded->end(),
                                   messages.begin() +
                                       static_cast<std::ptrdiff_t>(begin)),
                    "codec round-trip corrupted a batch");
    group = std::move(*decoded);
    bytes_.fetch_add(scratch.size(), std::memory_order_relaxed);
  } else {
    group.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      group.push_back(std::move(messages[i]));
    }
  }
  // One latency sample for the whole batch: it travels as one frame.
  const Mailbox::Clock::time_point deliver_at = schedule_delivery(from, to);
  mailbox(to).push_all(std::move(group), deliver_at);
  sent_.fetch_add(end - begin, std::memory_order_relaxed);
}

void InProcTransport::send_batch(std::vector<proto::Message> messages) {
  if (messages.empty()) return;
  if (!options_.batching) {
    for (const proto::Message& message : messages) send(message);
    return;
  }
  // Coalesce consecutive same-channel runs; runs never reorder relative to
  // each other, so per-channel FIFO is exactly what per-message sends give.
  std::size_t begin = 0;
  while (begin < messages.size()) {
    std::size_t end = begin + 1;
    while (end < messages.size() &&
           messages[end].from == messages[begin].from &&
           messages[end].to == messages[begin].to) {
      ++end;
    }
    if (end - begin == 1) {
      send(messages[begin]);
    } else {
      send_coalesced(messages, begin, end);
    }
    begin = end;
  }
}

std::optional<proto::Message> InProcTransport::recv(proto::NodeId node) {
  return mailbox(node).pop();
}

std::vector<proto::Message> InProcTransport::recv_ready(proto::NodeId node) {
  return mailbox(node).pop_all_ready();
}

std::optional<proto::Message> InProcTransport::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  return mailbox(node).pop_until(Mailbox::Clock::now() + timeout);
}

void InProcTransport::shutdown() {
  for (auto& box : mailboxes_) box->close();
}

}  // namespace hlock::transport
