#include "proto/lock_mode.hpp"

namespace hlock::proto {

std::string to_string(LockMode m) {
  switch (m) {
    case LockMode::kNL:
      return "NL";
    case LockMode::kIR:
      return "IR";
    case LockMode::kR:
      return "R";
    case LockMode::kU:
      return "U";
    case LockMode::kIW:
      return "IW";
    case LockMode::kW:
      return "W";
  }
  return "?";
}

std::string to_string(ModeSet s) {
  std::string out = "{";
  bool first = true;
  for (LockMode m : kAllModes) {
    if (!s.contains(m)) continue;
    if (!first) out += ',';
    out += to_string(m);
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace hlock::proto
