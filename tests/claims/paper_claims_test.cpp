// Regression guards for the paper's evaluation claims: small versions of
// the figure experiments with assertions on the SHAPES the reproduction
// must preserve (orderings, monotonicity, claim thresholds). If a protocol
// change breaks one of these, the repository no longer reproduces the
// paper — these tests make that a red build instead of a stale
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"

namespace hlock::bench {
namespace {

ExperimentConfig linux_config(AppVariant variant, std::size_t nodes) {
  ExperimentConfig config;
  config.variant = variant;
  config.nodes = nodes;
  config.net_latency = sim::linux_cluster_preset().message_latency;
  config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
  config.ops_per_node = 50;
  config.seed = 101 + nodes;
  return config;
}

ExperimentConfig sp_config(std::size_t nodes, int ratio) {
  ExperimentConfig config;
  config.nodes = nodes;
  config.net_latency = sim::ibm_sp_preset().message_latency;
  config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  config.idle_time = DurationDist::uniform(SimTime::ms(15L * ratio), 0.5);
  config.ops_per_node = 40;
  config.seed = 211 + nodes + static_cast<std::uint64_t>(ratio);
  return config;
}

TEST(Fig7Claims, HierarchicalBeatsPureBeatsSameWork) {
  for (std::size_t nodes : {12u, 24u}) {
    const double hier = paper_message_metric(
        AppVariant::kHierarchical,
        run_averaged(linux_config(AppVariant::kHierarchical, nodes), 2));
    const double pure = paper_message_metric(
        AppVariant::kNaimiPure,
        run_averaged(linux_config(AppVariant::kNaimiPure, nodes), 2));
    const double same_work = paper_message_metric(
        AppVariant::kNaimiSameWork,
        run_averaged(linux_config(AppVariant::kNaimiSameWork, nodes), 2));
    EXPECT_LT(hier, pure) << nodes << " nodes";
    EXPECT_LT(pure, same_work) << nodes << " nodes";
  }
}

TEST(Fig7Claims, HierarchicalMessageOverheadFlattens) {
  // Logarithmic shape: the 12->24 node increment must add far less than
  // the 3->12 increment.
  const double small = paper_message_metric(
      AppVariant::kHierarchical,
      run_averaged(linux_config(AppVariant::kHierarchical, 3), 2));
  const double mid = paper_message_metric(
      AppVariant::kHierarchical,
      run_averaged(linux_config(AppVariant::kHierarchical, 12), 2));
  const double large = paper_message_metric(
      AppVariant::kHierarchical,
      run_averaged(linux_config(AppVariant::kHierarchical, 24), 2));
  EXPECT_LT(large - mid, (mid - small) * 0.8) << "curve is not flattening";
  EXPECT_LT(large, 4.5) << "asymptote drifted far above the paper's ~3";
}

TEST(Fig8Claims, SameWorkLatencyIsSuperlinear) {
  const double at6 =
      run_averaged(linux_config(AppVariant::kNaimiSameWork, 6), 2)
          .mean_latency_ms;
  const double at24 =
      run_averaged(linux_config(AppVariant::kNaimiSameWork, 24), 2)
          .mean_latency_ms;
  // 4x the nodes must cost clearly more than 4x the latency.
  EXPECT_GT(at24, at6 * 5.0) << "same-work latency no longer superlinear";
}

TEST(Fig8Claims, HierarchicalLatencyStaysFarBelowSameWork) {
  for (std::size_t nodes : {12u, 24u}) {
    const double hier = paper_latency_metric_ms(
        AppVariant::kHierarchical,
        run_averaged(linux_config(AppVariant::kHierarchical, nodes), 2));
    const double same_work = paper_latency_metric_ms(
        AppVariant::kNaimiSameWork,
        run_averaged(linux_config(AppVariant::kNaimiSameWork, nodes), 2));
    EXPECT_LT(hier * 3.0, same_work) << nodes << " nodes";
  }
}

TEST(Fig9Claims, HigherRatiosCostMoreMessagesAtScale) {
  const double r1 = run_averaged(sp_config(48, 1), 2).msgs_per_acq;
  const double r25 = run_averaged(sp_config(48, 25), 2).msgs_per_acq;
  EXPECT_LT(r1, r25)
      << "lower concurrency must lengthen propagation paths";
}

TEST(Fig9Claims, MessageOverheadIsLogLike) {
  const double at12 = run_averaged(sp_config(12, 10), 2).msgs_per_acq;
  const double at48 = run_averaged(sp_config(48, 10), 2).msgs_per_acq;
  EXPECT_LT(at48, at12 * 1.75)
      << "4x nodes must cost well under 2x messages";
}

TEST(Fig10Claims, Ratio25LatencyStaysInSingleDigitMilliseconds) {
  // The paper's headline: sub-2 ms up to ~25 nodes at ratio 25.
  const double at24 = run_averaged(sp_config(24, 25), 2)
                          .mean_request_latency_ms;
  EXPECT_LT(at24, 2.0);
  const double at80 = run_averaged(sp_config(80, 25), 2)
                          .mean_request_latency_ms;
  EXPECT_LT(at80, 10.0);
}

TEST(Fig10Claims, LowerRatiosBendEarlierAndHigher) {
  const double r1 = run_averaged(sp_config(48, 1), 2)
                        .mean_request_latency_ms;
  const double r10 = run_averaged(sp_config(48, 10), 2)
                         .mean_request_latency_ms;
  const double r25 = run_averaged(sp_config(48, 25), 2)
                         .mean_request_latency_ms;
  EXPECT_GT(r1, r10);
  EXPECT_GT(r10, r25);
}

TEST(AblationClaims, FreezingPreventsWriterPenalty) {
  ExperimentConfig with = sp_config(32, 10);
  ExperimentConfig without = sp_config(32, 10);
  without.hier_config.freezing = false;
  const ExperimentResult frozen = run_averaged(with, 3);
  const ExperimentResult bypassing = run_averaged(without, 3);
  EXPECT_GT(bypassing.w_latency_ms, frozen.w_latency_ms * 1.5)
      << "disabling freezing no longer hurts writers — Rule 6 is inert";
}

TEST(AblationClaims, CompressionAndQueueingSaveMessages) {
  ExperimentConfig full = sp_config(32, 10);
  ExperimentConfig stripped = sp_config(32, 10);
  stripped.hier_config.path_compression = false;
  stripped.hier_config.local_queueing = false;
  const double with = run_averaged(full, 2).msgs_per_acq;
  const double without = run_averaged(stripped, 2).msgs_per_acq;
  EXPECT_LT(with, without * 0.9)
      << "the message-saving mechanisms stopped saving messages";
}

}  // namespace
}  // namespace hlock::bench
