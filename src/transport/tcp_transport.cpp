#include "transport/tcp_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <span>
#include <thread>

#include "proto/codec.hpp"
#include "transport/tcp_socket.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::transport {

TcpTransport::TcpTransport(std::size_t node_count, TcpOptions options)
    : options_(options) {
  HLOCK_REQUIRE(node_count >= 1, "a transport needs at least one node");
  HLOCK_REQUIRE(options_.max_send_attempts >= 1,
                "a send needs at least one attempt");
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    auto endpoint = std::make_unique<NodeEndpoint>();
    endpoint->listen_fd = listen_loopback(0);
    endpoint->port = local_port(endpoint->listen_fd);
    nodes_.push_back(std::move(endpoint));
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    nodes_[i]->acceptor =
        sched::Thread("tcp-acceptor", [this, i] { acceptor_loop(i); });
  }
}

TcpTransport::~TcpTransport() {
  shutdown();
  for (auto& endpoint : nodes_) {
    if (endpoint->acceptor.joinable()) endpoint->acceptor.join();
  }
  MutexLock guard(readers_mutex_);
  for (sched::Thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
}

std::uint16_t TcpTransport::port_of(proto::NodeId node) const {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->port;
}

void TcpTransport::acceptor_loop(std::size_t node) {
  for (;;) {
    int fd = -1;
    {
      // accept() blocks outside the sync layer; bracketed so it cannot
      // stall an explored schedule (docs/sched.md).
      sched::BlockingRegion region;
      fd = ::accept(nodes_[node]->listen_fd, nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    MutexLock guard(readers_mutex_);
    readers_.emplace_back(
        sched::Thread("tcp-reader", [this, node, fd] { reader_loop(node, fd); }));
  }
}

void TcpTransport::reader_loop(std::size_t node, int fd) {
  for (;;) {
    std::optional<std::vector<proto::Message>> messages;
    {
      // The frame read blocks on the socket, outside the sync layer.
      sched::BlockingRegion region;
      messages = read_frame_messages(fd);
    }
    if (!messages) break;
    // A batch frame unpacks in emission order; pushing its messages under
    // one mailbox lock preserves exactly the order a per-message sender
    // would have produced.
    std::vector<proto::Message> deliverable;
    deliverable.reserve(messages->size());
    for (proto::Message& message : *messages) {
      if (message.to.value() != node) {
        // A misaddressed frame is the sender's bug, not this connection's:
        // discard the one message and keep the channel alive — dropping the
        // connection would silently sever every later message on it.
        counters_.misaddressed_frames.fetch_add(1,
                                                std::memory_order_relaxed);
        HLOCK_LOG(kWarn, "tcp: frame addressed to "
                             << to_string(message.to)
                             << " arrived at node " << node
                             << "; frame discarded");
        continue;
      }
      deliverable.push_back(std::move(message));
    }
    nodes_[node]->inbox.push_all(std::move(deliverable),
                                 Mailbox::Clock::now());
  }
  ::close(fd);
}

int TcpTransport::channel_fd(std::uint32_t /*from*/, std::uint32_t to) {
  // Caller holds the channel's send mutex; this only creates the socket.
  return connect_loopback(nodes_[to]->port);
}

TcpTransport::Channel& TcpTransport::channel_of(proto::NodeId from,
                                                proto::NodeId to) {
  MutexLock guard(channels_mutex_);
  auto& slot = channels_[{from.value(), to.value()}];
  if (!slot) slot = std::make_unique<Channel>();
  return *slot;
}

bool TcpTransport::send_frame(proto::NodeId from, proto::NodeId to,
                              const std::vector<std::byte>& body,
                              std::uint64_t message_count) {
  Channel& channel = channel_of(from, to);

  // Retry with exponential backoff, reconnecting on the way: a transient
  // write failure (peer reset, severed channel) must never escape as an
  // exception — callers include receiver threads, where an escaped
  // exception would std::terminate the whole process.
  MutexLock guard(channel.send_mutex);
  std::chrono::milliseconds backoff = options_.initial_backoff;
  for (int attempt = 0; attempt < options_.max_send_attempts; ++attempt) {
    if (stopping_.load()) return false;
    if (attempt > 0) {
      counters_.send_retries.fetch_add(1, std::memory_order_relaxed);
      {
        // A real-time backoff sleep must not stall an explored schedule.
        sched::BlockingRegion region;
        std::this_thread::sleep_for(backoff);
      }
      backoff = std::min(backoff * 2, options_.max_backoff);
    }
    if (channel.fd < 0) {
      try {
        sched::BlockingRegion region;
        channel.fd = channel_fd(from.value(), to.value());
        if (attempt > 0) {
          counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const UsageError&) {
        continue;  // destination not accepting right now; back off, retry
      }
    }
    bool wrote = false;
    {
      sched::BlockingRegion region;
      wrote = write_frame_body(channel.fd, body);
    }
    if (wrote) {
      sent_.fetch_add(message_count, std::memory_order_relaxed);
      bytes_.fetch_add(body.size() + 4, std::memory_order_relaxed);
      return true;
    }
    ::close(channel.fd);
    channel.fd = -1;
  }
  counters_.send_failures.fetch_add(1, std::memory_order_relaxed);
  HLOCK_LOG(kError, "tcp: send to node " << to.value() << " failed after "
                                         << options_.max_send_attempts
                                         << " attempts; frame dropped");
  return false;
}

void TcpTransport::send(const proto::Message& message) {
  if (stopping_.load()) return;
  HLOCK_REQUIRE(message.to.value() < nodes_.size(), "unknown node id");
  HLOCK_REQUIRE(!message.from.is_none(), "message without a sender");
  // One scratch buffer per sending thread: the wire image of the steady
  // state allocates nothing.
  thread_local std::vector<std::byte> scratch;
  scratch.clear();
  proto::encode_into(message, scratch);
  send_frame(message.from, message.to, scratch, 1);
}

void TcpTransport::send_batch(std::vector<proto::Message> messages) {
  if (messages.empty()) return;
  if (!options_.batching) {
    for (const proto::Message& message : messages) send(message);
    return;
  }
  if (stopping_.load()) return;
  // Coalesce consecutive same-channel runs into one batch frame each; runs
  // never reorder, so TCP's in-order channel keeps per-channel FIFO intact.
  std::size_t begin = 0;
  while (begin < messages.size()) {
    std::size_t end = begin + 1;
    while (end < messages.size() &&
           messages[end].from == messages[begin].from &&
           messages[end].to == messages[begin].to) {
      ++end;
    }
    if (end - begin == 1) {
      send(messages[begin]);
    } else {
      const proto::Message& head = messages[begin];
      HLOCK_REQUIRE(head.to.value() < nodes_.size(), "unknown node id");
      HLOCK_REQUIRE(!head.from.is_none(), "message without a sender");
      thread_local std::vector<std::byte> scratch;
      scratch.clear();
      proto::encode_batch_into(
          std::span<const proto::Message>{messages.data() + begin,
                                          end - begin},
          scratch);
      send_frame(head.from, head.to, scratch, end - begin);
    }
    begin = end;
  }
}

bool TcpTransport::sever_channel(proto::NodeId from, proto::NodeId to) {
  Channel* channel = nullptr;
  {
    MutexLock guard(channels_mutex_);
    const auto it = channels_.find({from.value(), to.value()});
    if (it == channels_.end()) return false;
    channel = it->second.get();
  }
  MutexLock guard(channel->send_mutex);
  if (channel->fd < 0) return false;
  // Half-kill the socket but leave the stale fd in place: the sender only
  // discovers the failure when its next write returns an error.
  ::shutdown(channel->fd, SHUT_RDWR);
  return true;
}

std::optional<proto::Message> TcpTransport::recv(proto::NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->inbox.pop();
}

std::vector<proto::Message> TcpTransport::recv_ready(proto::NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->inbox.pop_all_ready();
}

std::optional<proto::Message> TcpTransport::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->inbox.pop_until(Mailbox::Clock::now() +
                                               timeout);
}

void TcpTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  for (auto& endpoint : nodes_) {
    // Closing the listener wakes the acceptor; shutdown() on it first is
    // portable across accept() implementations.
    ::shutdown(endpoint->listen_fd, SHUT_RDWR);
    ::close(endpoint->listen_fd);
    endpoint->inbox.close();
  }
  MutexLock guard(channels_mutex_);
  for (auto& [key, channel] : channels_) {
    MutexLock send_guard(channel->send_mutex);
    if (channel->fd >= 0) {
      ::shutdown(channel->fd, SHUT_RDWR);
      ::close(channel->fd);
      channel->fd = -1;
    }
  }
}

}  // namespace hlock::transport
