// Engine-side interface of the crash-recovery layer.
//
// The recovery::Manager is protocol-agnostic: it gathers per-lock state
// reports, elects a new token root and broadcasts epoch fences without
// knowing whether the node runs the hierarchical protocol or the Naimi
// baseline. Everything protocol-specific happens behind this Host
// interface, implemented by the runtime around HierEngine / NaimiEngine
// (Raymond's static-tree baseline has no recovery story and rejects it).
// See docs/recovery.md for the full walkthrough.
#pragma once

#include <cstdint>
#include <vector>

#include "core/effects.hpp"
#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "proto/message.hpp"

namespace hlock::recovery {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

/// One lock's state as reported to the recovery coordinator. The reporting
/// node has halted protocol processing, so these fields account for every
/// old-epoch message it will ever act on; the coordinator reconstructs the
/// lock's global state purely from these reports.
struct LockReport {
  std::uint32_t epoch = 0;        ///< reporter's current recovery epoch
  bool has_token = false;
  LockMode held = LockMode::kNL;  ///< Naimi reports kW while inside its CS
  bool waiting = false;           ///< a request is pending at the reporter
  LockMode wait_mode = LockMode::kNL;
  std::uint64_t wait_seq = 0;
  std::uint8_t wait_priority = 0;
  bool upgrading = false;  ///< Rule 7 upgrade in flight (hier only; such a
                           ///< node reports waiting=false — the fence
                           ///< preserves the upgrade at the root instead of
                           ///< queueing its pending W)
};

/// What the Manager needs from the node's protocol engine. All calls are
/// made under whatever serialization the runtime already provides for the
/// engine (managers never synchronize themselves).
class Host {
 public:
  virtual ~Host() = default;

  /// Lock ids this node holds protocol state for, in ascending id order
  /// (determinism: report message sequences must be identical across runs).
  virtual std::vector<LockId> recovery_locks() = 0;

  /// This node's report for `lock`.
  virtual LockReport report(LockId lock) = 0;

  /// Applies a fence to `lock`'s automaton (creating it if this node never
  /// touched the lock); returns the automaton's effects, which the runtime
  /// applies exactly like any protocol step.
  virtual core::Effects install_fence(LockId lock,
                                      const proto::EpochFence& fence) = 0;

  /// `lock`'s current recovery epoch (0 if the automaton does not exist),
  /// used by runtimes to route incoming messages: older epoch = stale drop,
  /// newer epoch = buffer until the local fence arrives.
  virtual std::uint32_t recovery_epoch(LockId lock) = 0;

  /// Sets the origin for locks first touched after a recovery: their lazily
  /// created automatons root at `root` and start in `epoch` (the pre-crash
  /// default root may be dead).
  virtual void set_default_origin(NodeId root, std::uint32_t epoch) = 0;
};

}  // namespace hlock::recovery
