// Lockdep-style lock-order recorder over the SyncObserver hook.
//
// Records the global lock acquisition-order graph at runtime: whenever a
// thread acquires lock class B while holding lock class A, the edge A -> B
// is added (with the acquisition stack captured the first time the edge
// appears). A cycle in this graph is a *potential* deadlock — two code
// paths that take the same locks in opposite orders — and is reported the
// moment the closing edge is recorded, with the stacks of both directions,
// even when no deadlock manifests in the run. This is the runtime
// complement of the compile-time capability annotations (HLOCK_EXCLUDES
// documents intent; lockdep checks what actually happens) and of TSan
// (which needs the deadlock-prone interleaving to actually occur).
//
// Lock *classes*: locks are keyed by construction site (or explicit name),
// not by instance — see hlock::Mutex's constructor. All eight Shard::mutex
// instances of a node are one class, so an ordering observed on shard 3
// constrains shard 5 too.
//
// Enabled by default in every test binary (tests/support/sched_env.cpp)
// and in the debug builds of the tools; see docs/sched.md and the lock
// hierarchy it documents in docs/static-analysis.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/sync_observer.hpp"

namespace hlock::sched {

/// One potential deadlock: the cycle of lock classes plus the acquisition
/// stacks of the two edges that close it.
struct LockdepReport {
  /// Human-readable class names along the cycle, first repeated last:
  /// "A -> B -> A".
  std::vector<std::string> cycle;
  /// Symbolized stack of the edge recorded earlier (the A-then-B path).
  std::string forward_stack;
  /// Symbolized stack of the acquisition that closed the cycle (the
  /// B-then-A path).
  std::string inverse_stack;
  /// Rendered one-blob report (what the default callback prints).
  std::string render() const;
};

/// See file comment.
class Lockdep : public SyncObserver {
 public:
  /// `on_report` receives every detected inversion; the default prints the
  /// report to stderr. Reports are also counted and kept (capped) for
  /// programmatic inspection either way.
  explicit Lockdep(std::function<void(const LockdepReport&)> on_report = {});
  ~Lockdep() override;

  // SyncObserver:
  void acquiring(const SyncId& id) override;
  void acquired(const SyncId& id) override;
  void released(const SyncId& id) override;

  /// Inversions detected so far.
  std::size_t violation_count() const;
  /// The first few reports (bounded; one per distinct closing edge).
  std::vector<LockdepReport> reports() const;

  /// The acquisition-order graph as "A -> B" lines, one per observed edge,
  /// sorted — the source of the documented lock hierarchy
  /// (docs/static-analysis.md).
  std::string render_graph() const;

  /// Forgets all edges and reports (not the per-thread held stacks, which
  /// empty themselves as locks are released).
  void reset();

 private:
  struct ClassInfo;
  struct Edge;

  /// Interns the lock class of `id` (site / name keyed). Steady state is
  /// a pointer-keyed map lookup with no allocation — the string class key
  /// is only built the first time a site is seen (the mailbox allocation
  /// tests run with lockdep installed and count every operator new).
  std::size_t class_of(const SyncId& id);
  /// True if `to` can reach `from` over recorded edges (cycle check for a
  /// prospective from -> to edge).
  bool reaches(std::size_t to, std::size_t from) const;

  mutable std::mutex mu_;  // raw std::mutex: hlock::Mutex would recurse
  std::vector<ClassInfo> classes_;
  std::map<std::string, std::size_t> class_index_;
  /// Allocation-free fast path for class_of: (file-or-name literal, line)
  /// -> class. Distinct literal pointers for the same site (separate TUs)
  /// get separate entries but dedupe onto one class via class_index_.
  std::map<std::pair<const void*, unsigned>, std::size_t> site_index_;
  std::map<std::pair<std::size_t, std::size_t>, Edge> edges_;
  std::vector<LockdepReport> reports_;
  std::size_t violations_ = 0;
  std::function<void(const LockdepReport&)> on_report_;
};

/// Installs a process-lifetime Lockdep as the global observer (idempotent;
/// no-op if any observer is already installed). Used by the test
/// environment and the debug builds of the tools. Returns the instance, or
/// nullptr if another observer was already installed.
Lockdep* install_global_lockdep();

}  // namespace hlock::sched
