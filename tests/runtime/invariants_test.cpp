// Negative tests of the invariant checkers: a checker that can only pass
// proves nothing. Violations are manufactured by delivering forged
// protocol messages (a second token) and by inspecting genuinely
// non-quiescent states.
#include "runtime/invariants.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_cluster.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

SimClusterOptions options(Protocol protocol) {
  SimClusterOptions opts;
  opts.node_count = 3;
  opts.protocol = protocol;
  opts.message_latency = DurationDist::constant(SimTime::ms(1));
  opts.seed = 1;
  return opts;
}

TEST(InvariantsNegative, ForgedSecondTokenIsDetected) {
  SimCluster cluster{options(Protocol::kHierarchical)};
  cluster.set_grant_handler([](NodeId, LockId, bool) {});
  const LockId lock{0};

  // Node 1 requests W so it has a pending mode a forged token can match.
  // The REQUEST is still in flight when we forge a TOKEN from node 2 —
  // node 0 (the real token) never moved.
  cluster.request(NodeId{1}, lock, LockMode::kW);
  const proto::Message forged{
      NodeId{2}, NodeId{1}, lock,
      proto::HierToken{LockMode::kW, LockMode::kNL, {}}};
  cluster.engine(NodeId{1}).deliver(forged);

  const auto report = check_safety(cluster, {lock});
  ASSERT_FALSE(report.ok()) << "a duplicated token went unnoticed";
  EXPECT_NE(report.to_string().find("token"), std::string::npos);
}

TEST(InvariantsNegative, ForgedTokenCausesIncompatibleHolds) {
  SimCluster cluster{options(Protocol::kHierarchical)};
  cluster.set_grant_handler([](NodeId, LockId, bool) {});
  const LockId lock{0};

  // Node 0 (token) holds W; a forged token lets node 1 hold W too.
  cluster.request(NodeId{0}, lock, LockMode::kW);
  cluster.simulator().run_to_completion();
  cluster.request(NodeId{1}, lock, LockMode::kW);  // queued at node 0
  cluster.simulator().run_to_completion();
  const proto::Message forged{
      NodeId{2}, NodeId{1}, lock,
      proto::HierToken{LockMode::kW, LockMode::kNL, {}}};
  cluster.engine(NodeId{1}).deliver(forged);

  const auto report = check_safety(cluster, {lock});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("incompatible"), std::string::npos);
}

TEST(InvariantsNegative, NonQuiescentStateIsFlagged) {
  SimCluster cluster{options(Protocol::kHierarchical)};
  cluster.set_grant_handler([](NodeId, LockId, bool) {});
  const LockId lock{0};
  cluster.request(NodeId{0}, lock, LockMode::kW);
  cluster.simulator().run_to_completion();
  cluster.request(NodeId{1}, lock, LockMode::kW);  // waits forever
  cluster.simulator().run_to_completion();

  const auto report = check_quiescent_structure(cluster, {lock});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("pending"), std::string::npos);
  // Safety alone is still fine — only quiescence is violated.
  EXPECT_TRUE(check_safety(cluster, {lock}).ok());
}

TEST(InvariantsNegative, NaimiDoubleTokenDetected) {
  SimCluster cluster{options(Protocol::kNaimi)};
  cluster.set_grant_handler([](NodeId, LockId, bool) {});
  const LockId lock{0};
  cluster.request(NodeId{1}, lock, LockMode::kW);  // REQUEST in flight
  const proto::Message forged{NodeId{2}, NodeId{1}, lock,
                              proto::NaimiToken{}};
  cluster.engine(NodeId{1}).deliver(forged);
  // Do NOT deliver the in-flight request: the real token would then be
  // passed as well and the automaton's own invariant (token arriving at a
  // token holder) throws before the checker could run — also a detection,
  // but this test exercises the cluster-level sweep.
  const auto report = check_safety(cluster, {lock});
  ASSERT_FALSE(report.ok());
}

TEST(InvariantsNegative, ReportRendersAllViolations) {
  InvariantReport report;
  report.violations = {"first", "second"};
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.to_string(), "first\nsecond");
}

}  // namespace
}  // namespace hlock::runtime
