// Lamport logical clocks for causal ordering of cross-node span events.
//
// Wall clocks on different nodes (and per-node simulated delivery times
// under reordering transports) do not agree, so the observability layer
// stamps every trace event and every wire message with a Lamport timestamp:
// ticked on each local protocol step and send, merged (max + 1) on each
// receive. Two events related by message flow then always compare in causal
// order, which is what the span collector and Chrome-trace export rely on
// when the faulty transport delays or reorders delivery. The runtimes own
// the clocks (one per node) because automatons are pure state machines that
// hold no clock of any kind — see runtime/sim_cluster.hpp and
// runtime/thread_cluster.hpp for the stamping points.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace hlock::obs {

/// One node's Lamport clock. Deliberately unsynchronized: each clock is
/// owned by exactly one node's runtime state, which already serializes
/// access (the simulator is single-threaded; ThreadCluster guards each
/// node's state with its per-node mutex).
class LamportClock {
 public:
  /// Advances for a local step or send; returns the new time. The first
  /// tick returns 1, so a zero timestamp always means "no clock ran".
  std::uint64_t tick() { return ++now_; }

  /// Merges a received message's timestamp and advances past it:
  /// now = max(now, received) + 1. Returns the new time.
  std::uint64_t observe(std::uint64_t received) {
    now_ = std::max(now_, received) + 1;
    return now_;
  }

  /// The last returned time (0 before any tick).
  std::uint64_t current() const { return now_; }

 private:
  std::uint64_t now_ = 0;
};

/// Lock-free variant of LamportClock for runtimes whose per-node state is
/// sharded: ThreadCluster serializes each lock's automaton under its
/// shard's mutex, but the node's single Lamport clock is shared by all
/// shards, so its ticks and merges must synchronize themselves. Same
/// semantics as LamportClock; relaxed ordering suffices because the clock
/// value itself is the payload (it travels inside messages and events, and
/// those are published under mutexes / through the transport).
class AtomicLamportClock {
 public:
  /// Advances for a local step or send; returns the new time (unique per
  /// call — concurrent tickers never observe the same value).
  std::uint64_t tick() {
    return now_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Merges a received message's timestamp and advances past it:
  /// now = max(now, received) + 1. Returns a time at least that large (a
  /// concurrent tick may advance the clock further before the caller reads
  /// it, which only strengthens the ordering).
  std::uint64_t observe(std::uint64_t received) {
    std::uint64_t prev = now_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = std::max(prev, received) + 1;
    } while (!now_.compare_exchange_weak(prev, next,
                                         std::memory_order_relaxed));
    return next;
  }

  /// The last returned time (0 before any tick).
  std::uint64_t current() const {
    return now_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_{0};
};

}  // namespace hlock::obs
