// Tests of the Chrome trace_event exporter and the strict JSON validator
// that guards it (the exporter writes JSON by hand — the repo takes no
// dependencies — so the validator is the structural safety net).
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include "obs/span.hpp"

namespace hlock::obs {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using proto::RequestId;

RequestSpan sample_span() {
  RequestSpan span;
  span.id = RequestId{NodeId{0}, 1};
  span.lock = LockId{0};
  span.mode = LockMode::kW;
  span.events = {
      SpanEvent{Phase::kIssued, SimTime::ms(1), 1, NodeId{0}},
      SpanEvent{Phase::kGranted, SimTime::ms(2), 4, NodeId{1}},
      SpanEvent{Phase::kCsEntered, SimTime::us(2500), 5, NodeId{0}},
      SpanEvent{Phase::kCsExited, SimTime::ms(3), 7, NodeId{0}},
  };
  return span;
}

// The exporter's exact output is pinned golden-file style: the trace
// format has no schema to validate against beyond "Chrome loads it", so
// any drift in field names, units or event shapes must be a conscious
// choice.
TEST(ChromeTrace, GoldenDocument) {
  const std::string json =
      chrome_trace_json({sample_span()}, ChromeTraceOptions{2});
  EXPECT_EQ(json,
            "{\"traceEvents\": [\n"
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
            "\"tid\": 0, \"args\": {\"name\": \"node0\"}},\n"
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": 0, \"args\": {\"name\": \"node1\"}},\n"
            "{\"name\": \"lock0 W node0#1\", \"cat\": \"request\", "
            "\"ph\": \"b\", \"id\": \"lock0/node0#1\", \"pid\": 0, "
            "\"tid\": 0, \"ts\": 1000.000, \"args\": {\"mode\": \"W\", "
            "\"priority\": 0}},\n"
            "{\"name\": \"lock0 W node0#1\", \"cat\": \"request\", "
            "\"ph\": \"e\", \"id\": \"lock0/node0#1\", \"pid\": 0, "
            "\"tid\": 0, \"ts\": 3000.000, \"args\": {\"complete\": "
            "true}},\n"
            "{\"name\": \"issued\", \"cat\": \"phase\", \"ph\": \"i\", "
            "\"s\": \"t\", \"pid\": 0, \"tid\": 0, \"ts\": 1000.000, "
            "\"args\": {\"request\": \"lock0/node0#1\", \"lamport\": 1}},\n"
            "{\"name\": \"granted\", \"cat\": \"phase\", \"ph\": \"i\", "
            "\"s\": \"t\", \"pid\": 1, \"tid\": 0, \"ts\": 2000.000, "
            "\"args\": {\"request\": \"lock0/node0#1\", \"lamport\": 4}},\n"
            "{\"name\": \"cs-enter\", \"cat\": \"phase\", \"ph\": \"i\", "
            "\"s\": \"t\", \"pid\": 0, \"tid\": 0, \"ts\": 2500.000, "
            "\"args\": {\"request\": \"lock0/node0#1\", \"lamport\": 5}},\n"
            "{\"name\": \"cs-exit\", \"cat\": \"phase\", \"ph\": \"i\", "
            "\"s\": \"t\", \"pid\": 0, \"tid\": 0, \"ts\": 3000.000, "
            "\"args\": {\"request\": \"lock0/node0#1\", \"lamport\": 7}},\n"
            "{\"name\": \"CS lock0 W\", \"cat\": \"cs\", \"ph\": \"X\", "
            "\"pid\": 0, \"tid\": 0, \"ts\": 2500.000, \"dur\": 500.000, "
            "\"args\": {\"request\": \"lock0/node0#1\"}}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
  EXPECT_TRUE(validate_json(json));
}

TEST(ChromeTrace, EmptySpanListIsStillValidJson) {
  const std::string json = chrome_trace_json({});
  EXPECT_TRUE(validate_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, InfersUndeclaredNodesFromSpans) {
  RequestSpan span = sample_span();
  const std::string json = chrome_trace_json({span}, ChromeTraceOptions{0});
  // Both the origin (node0) and the granter (node1) get named tracks even
  // though no node count was declared.
  EXPECT_NE(json.find("\"name\": \"node0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"node1\""), std::string::npos);
  EXPECT_TRUE(validate_json(json));
}

TEST(ChromeTrace, IncompleteSpanExportsWithoutCsSlice) {
  RequestSpan span = sample_span();
  span.events.resize(2);  // never entered its critical section
  const std::string json = chrome_trace_json({span});
  EXPECT_TRUE(validate_json(json));
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\": false"), std::string::npos);
}

TEST(JsonValidator, AcceptsValidDocuments) {
  EXPECT_TRUE(validate_json("{}"));
  EXPECT_TRUE(validate_json("[]"));
  EXPECT_TRUE(validate_json("null"));
  EXPECT_TRUE(validate_json("true"));
  EXPECT_TRUE(validate_json("-12.5e+3"));
  EXPECT_TRUE(validate_json("\"esc \\\" \\\\ \\n \\u00fc\""));
  EXPECT_TRUE(validate_json("  {\"a\": [1, 2.0, {\"b\": null}]}  "));
}

TEST(JsonValidator, RejectsInvalidDocuments) {
  EXPECT_FALSE(validate_json(""));
  EXPECT_FALSE(validate_json("{"));
  EXPECT_FALSE(validate_json("{\"a\": }"));
  EXPECT_FALSE(validate_json("{'a': 1}"));          // wrong quotes
  EXPECT_FALSE(validate_json("{\"a\": 1,}"));       // trailing comma
  EXPECT_FALSE(validate_json("[1, 2] x"));          // trailing garbage
  EXPECT_FALSE(validate_json("01"));                // leading zero
  EXPECT_FALSE(validate_json("1."));                // bare decimal point
  EXPECT_FALSE(validate_json("\"unterminated"));
  EXPECT_FALSE(validate_json("\"bad \\q escape\""));
  EXPECT_FALSE(validate_json("\"raw \n newline\""));
  EXPECT_FALSE(validate_json("nul"));
  // Nesting past the validator's depth cap is rejected, not stack-crashed.
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(validate_json(deep));
}

}  // namespace
}  // namespace hlock::obs
