// Deterministic regressions for the distributed races found during
// development (see DESIGN.md "Grant epochs"). Each test replays the exact
// message interleaving that used to corrupt state and asserts the repaired
// behavior, message by message.
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

using core::CopysetEntry;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kW = LockMode::kW;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3;

const CopysetEntry* find_entry(const HierAutomaton& node, std::size_t child) {
  for (const CopysetEntry& entry : node.copyset()) {
    if (entry.node == NodeId{static_cast<std::uint32_t>(child)}) {
      return &entry;
    }
  }
  return nullptr;
}

TEST(RaceRegression, StaleReleaseCrossingRegrantIsEpochFiltered) {
  // The original crash: B (in A's copyset through child C) re-requests R;
  // C's release then drains B's ownership to NL and B's RELEASE(NL)
  // chases the in-flight REQUEST. A grants first; the stale release must
  // NOT evict the entry A just strengthened.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);      // A token holds R
  net.request(B, kIR);     // B child of A with IR
  net.settle();
  net.request(C, kIR);     // C granted by B itself (owned IR >= IR)
  net.settle();
  net.release(B);          // B: held NL, owned IR through C — no message
  ASSERT_EQ(net.node(B).owned(), kIR);
  ASSERT_NE(find_entry(net.node(A), B), nullptr);

  // B re-requests R; the REQUEST is in flight to A.
  net.request(B, kR);
  ASSERT_EQ(net.wire().size(), 1u);

  // C releases; B's ownership drains to NL and B notifies A — the
  // RELEASE(NL) is now queued on the same channel BEHIND the request.
  net.release(C);
  ASSERT_TRUE(net.deliver_to(B));  // C's RELEASE(NL) -> B
  ASSERT_EQ(net.node(B).owned(), kNL);
  ASSERT_EQ(net.wire().size(), 2u);  // B's REQUEST, then B's RELEASE(NL)

  // A processes the REQUEST: copy grant, entry strengthened to R.
  ASSERT_TRUE(net.deliver_to(A));
  const CopysetEntry* entry = find_entry(net.node(A), B);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->mode, kR);

  // A processes the stale RELEASE(NL): it must be dropped (older epoch).
  ASSERT_TRUE(net.deliver_to(A));
  entry = find_entry(net.node(A), B);
  ASSERT_NE(entry, nullptr) << "stale release evicted a live child";
  EXPECT_EQ(entry->mode, kR);

  // B receives the grant and holds R; a later real release must still
  // flow normally (fresh epoch).
  net.settle();
  EXPECT_EQ(net.node(B).held(), kR);
  net.release(B);
  net.settle();
  EXPECT_EQ(find_entry(net.node(A), B), nullptr)
      << "the post-grant release must be accepted";
  EXPECT_EQ(net.node(A).owned(), kR);  // A itself still holds R
}

TEST(RaceRegression, ForeignGrantDetachesSubtreeFromOldParent) {
  // C belongs to B's copyset (owning IR through child D) but its next
  // request is granted by A. C's subtree moves under A; without the
  // explicit detach, B would record C forever and its owned mode could
  // never drain — a liveness leak the random tests caught.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{2}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);   // B child of A (R)
  net.settle();
  net.request(C, kIR);  // granted by B
  net.settle();
  net.request(D, kIR);  // granted by C
  net.settle();
  net.release(C);       // C: owned IR through D
  net.release(B);       // B: owned IR through C -> weakens R->IR, tells A
  net.settle();
  ASSERT_EQ(find_entry(net.node(A), B)->mode, kIR);
  ASSERT_EQ(find_entry(net.node(B), C)->mode, kIR);

  // C requests R: B (owned IR) cannot grant and forwards to A (token,
  // holds R) which grants the copy — a foreign granter for C.
  net.request(C, kR);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kR);
  EXPECT_EQ(net.node(C).parent(), NodeId{0});

  // The detach must have cleaned B: C gone from its copyset, B's owned
  // drained to NL, and A's record of B removed in turn.
  EXPECT_EQ(find_entry(net.node(B), C), nullptr)
      << "old parent still records the migrated subtree";
  EXPECT_EQ(net.node(B).owned(), kNL);
  EXPECT_EQ(find_entry(net.node(A), B), nullptr);
  // A now aggregates C (R), which aggregates D (IR).
  EXPECT_EQ(find_entry(net.node(A), C)->mode, kR);
  EXPECT_EQ(net.node(C).owned(), kR);
  EXPECT_EQ(find_entry(net.node(C), D)->mode, kIR);

  // Full drain stays consistent.
  net.release(C);
  net.release(D);
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(A).owned(), kNL);
  EXPECT_TRUE(net.node(A).copyset().empty());
}

TEST(RaceRegression, RoutingHintReversesToRequester) {
  // Path compression: a forwarder's routing hint flips to the requester
  // while its granter link stays intact.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kW);  // token holds W: C's request will queue at A
  net.request(C, kW);  // C -> B -> A
  ASSERT_TRUE(net.deliver_one());  // B forwards
  EXPECT_EQ(net.node(B).route_hint(), NodeId{2})
      << "forwarding must reverse the hint to the requester";
  EXPECT_EQ(net.node(B).parent(), NodeId{0})
      << "the granter link must not be touched by compression";
  net.settle();
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kW);
}

TEST(RaceRegression, PendingNodeAbsorbsAllRequests) {
  // Soundness amendment to Table 1(c) under path compression: a pending
  // node queues every incoming request, even ones the literal table would
  // forward (pending R, incoming W -> F in the paper's table).
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kW);
  net.request(B, kR);  // queued at A (incompatible), B pending
  net.settle();
  net.request(C, kW);  // routed C -> B; B pending => absorbed
  net.settle();
  ASSERT_EQ(net.node(B).queue().size(), 1u);
  EXPECT_EQ(net.node(B).queue().front().requester, NodeId{2});

  // When B's own grant arrives the absorbed request is re-routed (B
  // cannot grant W) and eventually served — liveness of absorption.
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kR);
  EXPECT_EQ(net.cs_entries(C), 0);
  net.release(B);
  net.settle();
  EXPECT_EQ(net.cs_entries(C), 1);
  EXPECT_EQ(net.node(C).held(), kW);
}

TEST(RaceRegression, LiteralTableCWithoutCompressionStillForwards) {
  core::HierConfig config;
  config.path_compression = false;
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents, config};
  net.request(A, kW);
  net.request(B, kR);  // B pending R
  net.settle();
  net.request(C, kW);  // Table 1(c) row R, column W says FORWARD
  ASSERT_TRUE(net.deliver_one());
  EXPECT_TRUE(net.node(B).queue().empty());
  ASSERT_FALSE(net.wire().empty());
  EXPECT_EQ(net.wire().back().to, NodeId{0}) << "forwarded toward the token";
}

TEST(Fifo, IncompatibleRequestsGrantInArrivalOrder) {
  // Three W requests issued in a known global order must be served in
  // that order (the distributed-FIFO equivalence of Rule 4/5).
  HierNet net{5};
  net.request(A, kW);
  net.request(B, kW);
  net.settle();
  net.request(C, kW);
  net.settle();
  net.request(D, kW);
  net.settle();

  std::vector<std::size_t> order;
  auto observe = [&] {
    for (std::size_t i : {B, C, D}) {
      if (net.node(i).held() == kW &&
          (order.empty() || order.back() != i)) {
        order.push_back(i);
      }
    }
  };
  for (std::size_t holder : {A, B, C}) {
    net.release(holder);
    net.settle();
    observe();
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{B, C, D}));
}

}  // namespace
}  // namespace hlock::test
