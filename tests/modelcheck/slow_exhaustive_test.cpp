// Exhaustive explorations too large for the default test budget, labeled
// `slow_modelcheck` in CMake: run `ctest -LE slow_modelcheck` to skip
// them, or `ctest -L slow_modelcheck` to run only these.
//
// These configurations are only feasible because of the reductions; each
// test also cross-validates a smaller projection against an unreduced run
// so the big runs inherit trust from the cheap ones.
#include "modelcheck/explorer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hlock::modelcheck {
namespace {

using proto::LockMode;

Script contender() {
  return {ScriptOp::acquire(LockMode::kU), ScriptOp::release(),
          ScriptOp::acquire(LockMode::kIR)};
}

Script churner() {
  return {ScriptOp::acquire(LockMode::kR), ScriptOp::release(),
          ScriptOp::acquire(LockMode::kW), ScriptOp::release()};
}

TEST(SlowModelcheck, FourContendersExhaustively) {
  const std::vector<Script> scripts(4, contender());
  ExploreOptions reduced;
  reduced.por = true;
  reduced.symmetry = true;
  const ExploreResult fast = explore(scripts, reduced);
  EXPECT_TRUE(fast.ok) << fast.violation;
  // The same configuration unreduced — the cross-validation that makes
  // the reduced verdict trustworthy at this size.
  const ExploreResult base = explore(scripts);
  EXPECT_TRUE(base.ok) << base.violation;
  EXPECT_EQ(base.verdict, fast.verdict);
  EXPECT_GE(base.states_explored, 5 * fast.states_explored);
}

TEST(SlowModelcheck, FourChurnersOnlyFeasibleReduced) {
  // Four nodes, four-op scripts: the unreduced exploration blows through
  // a million-state budget; POR + symmetry finish in ~165k states. Both
  // runs get the same budget, so the test IS the feasibility claim.
  const std::vector<Script> scripts(4, churner());
  ExploreOptions options;
  options.max_states = 1'000'000;
  const ExploreResult unreduced = explore(scripts, options);
  EXPECT_EQ(unreduced.verdict, Verdict::kStateLimit);
  options.por = true;
  options.symmetry = true;
  const ExploreResult reduced = explore(scripts, options);
  EXPECT_TRUE(reduced.ok) << reduced.violation;
  EXPECT_EQ(reduced.verdict, Verdict::kOk);
  EXPECT_EQ(reduced.stats.symmetry_permutations, 24u);  // 4!
  EXPECT_GT(reduced.stats.por_reduced_states, 0u);
}

TEST(SlowModelcheck, LintedUpgradeStormExhaustively) {
  const Script upgrader{ScriptOp::acquire(LockMode::kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  const std::vector<Script> scripts{upgrader, upgrader, churner()};
  ExploreOptions options;
  options.lint = true;
  options.por = true;
  const ExploreResult result = explore(scripts, options);
  EXPECT_TRUE(result.ok) << result.violation;
}

}  // namespace
}  // namespace hlock::modelcheck
