#include "runtime/thread_cluster.hpp"

#include "runtime/instrumented_engine.hpp"
#include "telemetry/exports.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::runtime {

namespace {

std::unique_ptr<LockEngine> make_engine(const ThreadClusterOptions& options,
                                        NodeId self) {
  std::unique_ptr<LockEngine> engine;
  if (options.protocol == Protocol::kHierarchical) {
    engine = std::make_unique<HierEngine>(self, options.initial_root,
                                          options.hier_config);
  } else if (options.protocol == Protocol::kRaymond) {
    HLOCK_REQUIRE(options.initial_root == NodeId{0},
                  "the Raymond tree is rooted at node 0");
    engine = std::make_unique<RaymondEngine>(self, options.node_count);
  } else {
    engine = std::make_unique<NaimiEngine>(self, options.initial_root);
  }
  if (options.metrics != nullptr) {
    engine = std::make_unique<InstrumentedEngine>(
        std::move(engine), *options.metrics, options.protocol, self);
  }
  return engine;
}

}  // namespace

ThreadCluster::ThreadCluster(const ThreadClusterOptions& options)
    : metrics_(options.metrics), watchdog_(options.watchdog),
      recovery_(options.recovery) {
  if (options.transport == TransportKind::kTcp) {
    transport::TcpOptions tcp_options;
    tcp_options.batching = options.batching;
    auto tcp = std::make_unique<transport::TcpTransport>(options.node_count,
                                                         tcp_options);
    tcp_ = tcp.get();
    transport_ = std::move(tcp);
  } else {
    transport_ = std::make_unique<transport::InProcTransport>(
        transport::InProcOptions{options.node_count, options.message_latency,
                                 options.seed, options.codec_roundtrip,
                                 options.batching});
  }
  if (options.faults.any()) {
    transport::FaultPlan plan = options.faults;
    if (plan.seed == 0) plan.seed = options.seed;
    auto faulty = std::make_unique<transport::FaultyTransport>(
        std::move(transport_), plan);
    faulty_ = faulty.get();
    transport_ = std::move(faulty);
  }
  HLOCK_REQUIRE(options.node_count >= 1, "a cluster needs at least one node");
  HLOCK_REQUIRE(options.initial_root.value() < options.node_count,
                "the initial root must be one of the cluster's nodes");
  HLOCK_REQUIRE(
      !(options.recovery.enabled && options.protocol == Protocol::kRaymond),
      "crash recovery is not supported for the Raymond baseline");
  HLOCK_REQUIRE(!(options.recovery.enabled && options.engine_shards > 1),
                "crash recovery requires engine_shards <= 1: the manager "
                "reports over the node's whole lock space");
  shard_count_ = options.engine_shards == 0 ? kDefaultEngineShards
                                            : options.engine_shards;
  if (options.recovery.enabled) shard_count_ = 1;
  if (metrics_ != nullptr) register_transport_metrics(options.node_count);
  nodes_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    auto rt = std::make_unique<NodeRuntime>();
    if (metrics_ != nullptr) {
      rt->recv_batch = &metrics_->histogram(
          telemetry::labeled("hlock_recv_batch_size",
                             {{"node", std::to_string(i)}}),
          telemetry::linear_bounds(1.0, 1.0, 16));
    }
    rt->shards.reserve(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      auto shard = std::make_unique<Shard>();
      if (metrics_ != nullptr) {
        shard->queue_depth = &metrics_->gauge(telemetry::labeled(
            "hlock_engine_queue_depth",
            {{"node", std::to_string(i)}, {"shard", std::to_string(s)}}));
        shard->tokens_held = &metrics_->gauge(telemetry::labeled(
            "hlock_tokens_held",
            {{"node", std::to_string(i)}, {"shard", std::to_string(s)}}));
      }
      // No thread can see the node yet, but `engine` is lock-guarded state
      // of a foreign object as far as the analysis is concerned — take the
      // (uncontended, once-per-shard) lock rather than suppress.
      MutexLock guard(shard->mutex);
      shard->engine = make_engine(options, self);
      if (options.recovery.enabled && s == 0) {
        rt->manager = std::make_unique<recovery::Manager>(
            self, options.node_count, options.recovery,
            shard->engine.get());
      }
      rt->shards.push_back(std::move(shard));
    }
    if (options.recovery.enabled && metrics_ != nullptr) {
      const auto name = [&](std::string_view base) {
        return telemetry::labeled(base, {{"node", std::to_string(i)}});
      };
      rt->epoch_gauge = &metrics_->gauge(name("hlock_epoch"));
      rt->suspicions = &metrics_->counter(name("hlock_suspicions_total"));
      rt->fences = &metrics_->counter(name("hlock_fences_total"));
      rt->recoveries = &metrics_->counter(name("hlock_recoveries_total"));
      rt->stale_drops_metric =
          &metrics_->counter(name("hlock_stale_drops_total"));
      rt->recovery_ms = &metrics_->histogram(name("hlock_recovery_ms"));
    }
    nodes_.push_back(std::move(rt));
  }
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    const std::string name = "recv-" + std::to_string(i);
    nodes_[i]->receiver =
        sched::Thread(name.c_str(), [this, self] { receiver_loop(self); });
  }
  if (options.recovery.enabled) {
    ticker_ = sched::Thread("recovery-ticker", [this] { ticker_loop(); });
  }
}

void ThreadCluster::register_transport_metrics(std::size_t node_count) {
  transport::Transport* transport = transport_.get();
  metrics_->register_counter_fn(
      "hlock_transport_messages_sent_total",
      [transport] { return transport->messages_sent(); });
  metrics_->register_counter_fn("hlock_transport_bytes_sent_total",
                                [transport] {
                                  return transport->bytes_sent();
                                });
  // Fault/retry counter structs fold in via their X-macro field tables.
  // With both decorator and TCP present the TCP retry counters get their
  // own prefix so the two field sets cannot collide.
  if (faulty_ != nullptr) {
    telemetry::export_transport_counters(*metrics_, faulty_->counters(),
                                         "hlock_transport_");
    if (tcp_ != nullptr) {
      telemetry::export_transport_counters(*metrics_, tcp_->counters(),
                                           "hlock_tcp_transport_");
    }
  } else if (tcp_ != nullptr) {
    telemetry::export_transport_counters(*metrics_, tcp_->counters(),
                                         "hlock_transport_");
  }
  // Mailbox depth per node. Safe as a snapshot-time callback: the mailbox
  // mutex is a leaf — nothing acquired under it — so registry -> mailbox
  // cannot complete a cycle (unlike shard mutexes; see Shard).
  for (std::size_t i = 0; i < node_count; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    metrics_->register_gauge_fn(
        telemetry::labeled("hlock_mailbox_depth",
                           {{"node", std::to_string(i)}}),
        [transport, node] {
          return static_cast<double>(transport->inbox_depth(node));
        });
  }
}

ThreadCluster::~ThreadCluster() {
  // The callback series read transport_ — stop the polling before the
  // teardown so a concurrent sampler snapshot never touches a dying
  // transport.
  if (metrics_ != nullptr) {
    metrics_->unregister_callbacks("hlock_transport_");
    metrics_->unregister_callbacks("hlock_tcp_transport_");
    metrics_->unregister_callbacks("hlock_mailbox_depth");
  }
  stopping_.store(true);
  // Notify while holding each shard's mutex: a client thread that already
  // checked its predicate but has not entered the wait yet would otherwise
  // miss the wake-up and block forever (and the unsynchronized flag write
  // would race with the predicate read).
  for (auto& rt : nodes_) {
    for (auto& shard : rt->shards) {
      MutexLock guard(shard->mutex);
      shard->cv.notify_all();
    }
  }
  // Stop the recovery ticker before the transport dies under its sends.
  if (ticker_.joinable()) {
    {
      MutexLock guard(ticker_mutex_);
      ticker_cv_.notify_all();
    }
    ticker_.join();
  }
  transport_->shutdown();
  for (auto& rt : nodes_) {
    if (rt->receiver.joinable()) rt->receiver.join();
  }
  // Wait until every woken client call has left its wait; destroying the
  // node state under a thread still inside lock()/upgrade() would be a
  // use-after-free.
  for (auto& rt : nodes_) {
    for (auto& shard : rt->shards) {
      MutexLock guard(shard->mutex);
      while (shard->waiters != 0) shard->cv.wait(shard->mutex);
    }
  }
}

void ThreadCluster::set_event_sink(EventSink sink) {
  // Under event_mutex_: receivers read the sink while applying effects, so
  // an unguarded write here would race with every in-flight event (a real
  // defect the capability analysis flagged when the slot was annotated).
  MutexLock guard(event_mutex_);
  event_sink_ = std::move(sink);
}

ThreadCluster::NodeRuntime& ThreadCluster::runtime_of(NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return *nodes_[node.value()];
}

void ThreadCluster::receiver_loop(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  for (;;) {
    // One transport call drains every matured message (one mailbox lock
    // acquisition for the whole burst); an empty batch means shutdown.
    std::vector<proto::Message> batch = transport_->recv_ready(node);
    if (batch.empty()) return;
    // Crash-stop: the receiver discards the batch unread and exits — the
    // node consumes nothing ever again (docs/recovery.md).
    if (!rt.alive.load(std::memory_order_acquire)) return;
    if (rt.recv_batch != nullptr) {
      rt.recv_batch->record(static_cast<double>(batch.size()));
    }
    // Explicit schedule point: under the explorer a client thread may slip
    // in between the drain and the dispatch (shutdown/close races live
    // exactly there).
    sched::yield_point("thread_cluster.recv-batch");
    // Dispatch consecutive same-shard runs under one shard lock
    // acquisition, moving each message straight into delivery — batches
    // never cross shards out of order, preserving per-channel FIFO.
    std::size_t i = 0;
    while (i < batch.size()) {
      Shard& shard = shard_of(rt, batch[i].lock);
      MutexLock guard(shard.mutex);
      do {
        // Crash-stop taken mid-batch: stop dispatching immediately so the
        // crashed node cannot keep replying (and emitting old-epoch
        // traffic) for the rest of the batch.
        if (!rt.alive.load(std::memory_order_acquire)) return;
        proto::Message& message = batch[i];
        // An exception escaping a std::thread calls std::terminate, so a
        // receiver converts failures into a counted, logged error effect
        // and keeps draining its mailbox.
        try {
          rt.clock.observe(message.lamport);
          if (recovery_.enabled) {
            rt.manager->note_alive(message.from, wall_now());
            if (proto::is_recovery_kind(proto::kind_of(message.payload))) {
              apply_outcome(rt, shard,
                            rt.manager->on_message(message, wall_now()));
            } else {
              deliver_protocol(rt, shard, message);
            }
          } else {
            Effects effects = shard.engine->deliver(message);
            apply(rt, shard, message.lock, std::move(effects));
          }
        } catch (const std::exception& error) {
          receiver_errors_.fetch_add(1, std::memory_order_relaxed);
          HLOCK_LOG(kError, "node " << node.value()
                                    << ": error applying message: "
                                    << error.what());
        }
        ++i;
      } while (i < batch.size() &&
               &shard_of(rt, batch[i].lock) == &shard);
    }
  }
}

SimTime ThreadCluster::wall_now() const {
  const auto elapsed = std::chrono::steady_clock::now() - started_;
  return SimTime::ns(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void ThreadCluster::ticker_loop() {
  const auto interval =
      std::chrono::nanoseconds(recovery_.heartbeat_interval.count_ns());
  for (;;) {
    {
      MutexLock guard(ticker_mutex_);
      if (stopping_.load()) return;
      ticker_cv_.wait_for(ticker_mutex_, interval);
    }
    if (stopping_.load()) return;
    for (auto& rt_ptr : nodes_) {
      NodeRuntime& rt = *rt_ptr;
      if (!rt.alive.load(std::memory_order_acquire)) continue;
      Shard& shard = *rt.shards[0];
      MutexLock guard(shard.mutex);
      apply_outcome(rt, shard, rt.manager->on_tick(wall_now()));
    }
  }
}

void ThreadCluster::deliver_protocol(NodeRuntime& rt, Shard& shard,
                                     const proto::Message& message) {
  if (rt.manager->halted()) {
    rt.halted_msgs.push_back(message);
    return;
  }
  if (message.epoch > shard.engine->recovery_epoch(message.lock)) {
    // The sender is fenced into a newer epoch; our fence is still in
    // flight. Park the message — delivering it now would make the
    // automaton drop a perfectly valid post-fence message.
    rt.parked_msgs.push_back(message);
    return;
  }
  Effects effects = shard.engine->deliver(message);
  if (effects.stale_drop) ++rt.stale_drops;
  apply(rt, shard, message.lock, std::move(effects));
}

void ThreadCluster::apply_outcome(NodeRuntime& rt, Shard& shard,
                                  recovery::Outcome&& outcome) {
  const std::uint64_t step_time = rt.clock.tick();
  if (!outcome.events.empty()) {
    const SimTime at = wall_now();
    MutexLock sink_guard(event_mutex_);
    if (event_sink_) {
      for (trace::TraceEvent& event : outcome.events) {
        event.at = at;
        event.lamport = step_time;
        event_sink_(std::move(event));
      }
    }
  }
  if (!outcome.messages.empty()) {
    for (proto::Message& message : outcome.messages) {
      message.lamport = rt.clock.tick();
    }
    transport_->send_batch(std::move(outcome.messages));
  }
  for (auto& [lock, effects] : outcome.fence_effects) {
    apply(rt, shard, lock, std::move(effects));
  }
  if (outcome.unhalted) {
    // Replay through the same routing (a message can re-park or re-buffer
    // if another campaign began meanwhile), then wake the client calls
    // blocked in wait_unhalted().
    std::vector<proto::Message> parked = std::move(rt.parked_msgs);
    rt.parked_msgs.clear();
    std::vector<proto::Message> backlog = std::move(rt.halted_msgs);
    rt.halted_msgs.clear();
    for (const proto::Message& message : parked) {
      deliver_protocol(rt, shard, message);
    }
    for (const proto::Message& message : backlog) {
      deliver_protocol(rt, shard, message);
    }
    shard.cv.notify_all();
  }
  publish_recovery_metrics(rt);
}

void ThreadCluster::wait_unhalted(NodeRuntime& rt, Shard& shard) {
  if (!recovery_.enabled) return;
  ++shard.waiters;
  while (!stopping_ && rt.alive.load(std::memory_order_acquire) &&
         rt.manager->halted()) {
    shard.cv.wait(shard.mutex);
  }
  --shard.waiters;
  shard.cv.notify_all();  // a tearing-down destructor may drain waiters
}

void ThreadCluster::publish_recovery_metrics(NodeRuntime& rt) {
  if (rt.epoch_gauge == nullptr) return;
  const recovery::RecoveryCounters& counters = rt.manager->counters();
  rt.epoch_gauge->set(static_cast<double>(rt.manager->current_epoch()));
  rt.suspicions->inc(counters.suspicions - rt.published.suspicions);
  rt.fences->inc(counters.fences_installed - rt.published.fences_installed);
  rt.recoveries->inc(counters.recoveries - rt.published.recoveries);
  rt.stale_drops_metric->inc(rt.stale_drops - rt.published_stale);
  rt.published = counters;
  rt.published_stale = rt.stale_drops;
  const std::vector<double>& samples = rt.manager->recovery_durations_ms();
  for (; rt.published_samples < samples.size(); ++rt.published_samples) {
    rt.recovery_ms->record(samples[rt.published_samples]);
  }
}

void ThreadCluster::crash_stop(NodeId node) {
  HLOCK_REQUIRE(recovery_.enabled,
                "crash_stop() requires recovery to be enabled — without it "
                "the survivors could never regenerate the token");
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = *rt.shards[0];
  MutexLock guard(shard.mutex);
  rt.alive.store(false, std::memory_order_release);
  // A crash-stop loses all volatile state; wake any of the node's blocked
  // client calls (they observe !alive and throw).
  rt.halted_msgs.clear();
  rt.parked_msgs.clear();
  shard.cv.notify_all();
}

bool ThreadCluster::alive(NodeId node) const {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->alive.load(std::memory_order_acquire);
}

std::uint32_t ThreadCluster::recovery_epoch_of(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  HLOCK_REQUIRE(recovery_.enabled, "recovery is not enabled on this cluster");
  MutexLock guard(rt.shards[0]->mutex);
  return rt.manager->current_epoch();
}

recovery::RecoveryCounters ThreadCluster::recovery_counters(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  HLOCK_REQUIRE(recovery_.enabled, "recovery is not enabled on this cluster");
  MutexLock guard(rt.shards[0]->mutex);
  return rt.manager->counters();
}

std::uint64_t ThreadCluster::stale_drops(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  HLOCK_REQUIRE(recovery_.enabled, "recovery is not enabled on this cluster");
  MutexLock guard(rt.shards[0]->mutex);
  return rt.stale_drops;
}

void ThreadCluster::apply(NodeRuntime& rt, Shard& shard, LockId lock,
                          Effects&& effects) {
  // One Lamport tick per automaton step; every event of the step shares it,
  // every send ticks further (obs/lamport.hpp).
  const std::uint64_t step_time = rt.clock.tick();
  // Events are sunk before the step's messages go out so the sink's global
  // order respects causality (see set_event_sink). The sink slot is only
  // readable under event_mutex_ — checking it unguarded raced with
  // set_event_sink().
  if (!effects.events.empty()) {
    const auto elapsed = std::chrono::steady_clock::now() - started_;
    const SimTime at = SimTime::ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    MutexLock sink_guard(event_mutex_);
    if (event_sink_) {
      for (trace::TraceEvent& event : effects.events) {
        event.at = at;
        event.lamport = step_time;
        event_sink_(std::move(event));
      }
    }
  }
  if (!effects.messages.empty()) {
    for (proto::Message& message : effects.messages) {
      message.lamport = rt.clock.tick();
    }
    // One transport call for the whole step: the transport coalesces
    // same-destination runs into batch frames (when batching is on) and
    // falls back to per-message sends otherwise.
    transport_->send_batch(std::move(effects.messages));
  }
  bool notify = false;
  if (effects.entered_cs) {
    shard.granted.insert(lock);
    notify = true;
  }
  if (effects.upgraded) {
    shard.upgraded.insert(lock);
    notify = true;
  }
  if (notify) shard.cv.notify_all();
  // Refresh the shard's depth gauges after every step, under the shard
  // mutex we already hold — value gauges rather than snapshot callbacks to
  // keep the registry mutex out of the shard-lock order (see Shard).
  if (shard.queue_depth != nullptr) {
    shard.queue_depth->set(
        static_cast<double>(shard.engine->queued_requests()));
    shard.tokens_held->set(static_cast<double>(shard.engine->tokens_held()));
  }
}

void ThreadCluster::lock(NodeId node, LockId lock, LockMode mode,
                         std::uint8_t priority) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  // Watchdog bracket around the whole blocking wait. begin() before the
  // shard mutex (it takes the watchdog's own); end() under it is fine —
  // shard -> watchdog is the only order these two ever compose in.
  std::uint64_t stall_key = 0;
  if (watchdog_ != nullptr) {
    stall_key = watchdog_->begin(
        "node=" + std::to_string(node.value()) +
        " lock=" + std::to_string(lock.value()) +
        " mode=" + proto::to_string(mode));
  }
  sched::yield_point("thread_cluster.lock");
  MutexLock guard(shard.mutex);
  HLOCK_REQUIRE(rt.alive.load(std::memory_order_acquire),
                "node has crash-stopped");
  // Halted nodes (suspicion raised, fences pending) block application
  // progress until recovery completes; a crash or teardown while waiting
  // returns spuriously, same as the destructor contract.
  wait_unhalted(rt, shard);
  if (stopping_ || !rt.alive.load(std::memory_order_acquire)) {
    if (watchdog_ != nullptr) watchdog_->end(stall_key);
    return;
  }
  Effects effects = shard.engine->request(lock, mode, priority);
  apply(rt, shard, lock, std::move(effects));
  ++shard.waiters;
  while (!stopping_ && rt.alive.load(std::memory_order_acquire) &&
         shard.granted.count(lock) == 0) {
    shard.cv.wait(shard.mutex);
  }
  shard.granted.erase(lock);
  --shard.waiters;
  shard.cv.notify_all();  // a tearing-down destructor may drain waiters
  if (watchdog_ != nullptr) watchdog_->end(stall_key);
}

void ThreadCluster::unlock(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  MutexLock guard(shard.mutex);
  HLOCK_REQUIRE(rt.alive.load(std::memory_order_acquire),
                "node has crash-stopped");
  wait_unhalted(rt, shard);
  if (stopping_ || !rt.alive.load(std::memory_order_acquire)) return;
  Effects effects = shard.engine->release(lock);
  apply(rt, shard, lock, std::move(effects));
}

void ThreadCluster::upgrade(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  std::uint64_t stall_key = 0;
  if (watchdog_ != nullptr) {
    stall_key = watchdog_->begin("node=" + std::to_string(node.value()) +
                                 " lock=" + std::to_string(lock.value()) +
                                 " upgrade");
  }
  MutexLock guard(shard.mutex);
  HLOCK_REQUIRE(rt.alive.load(std::memory_order_acquire),
                "node has crash-stopped");
  wait_unhalted(rt, shard);
  if (stopping_ || !rt.alive.load(std::memory_order_acquire)) {
    if (watchdog_ != nullptr) watchdog_->end(stall_key);
    return;
  }
  Effects effects = shard.engine->upgrade(lock);
  apply(rt, shard, lock, std::move(effects));
  ++shard.waiters;
  while (!stopping_ && rt.alive.load(std::memory_order_acquire) &&
         shard.upgraded.count(lock) == 0) {
    shard.cv.wait(shard.mutex);
  }
  shard.upgraded.erase(lock);
  --shard.waiters;
  shard.cv.notify_all();  // a tearing-down destructor may drain waiters
  if (watchdog_ != nullptr) watchdog_->end(stall_key);
}

bool ThreadCluster::holds(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  MutexLock guard(shard.mutex);
  return shard.engine->holds(lock);
}

}  // namespace hlock::runtime
