#include "transport/tcp_node.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "transport/tcp_socket.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::transport {

TcpNode::TcpNode(proto::NodeId self, std::vector<TcpPeer> peers)
    : self_(self) {
  HLOCK_REQUIRE(!self.is_none(), "a TcpNode needs a real node id");
  listen_fd_ = listen_loopback(0);
  port_ = local_port(listen_fd_);
  for (const TcpPeer& peer : peers) add_peer(peer);
  start();
}

TcpNode::TcpNode(proto::NodeId self, int adopted_listen_fd,
                 std::vector<TcpPeer> peers)
    : self_(self) {
  HLOCK_REQUIRE(!self.is_none(), "a TcpNode needs a real node id");
  HLOCK_REQUIRE(adopted_listen_fd >= 0, "invalid adopted listener");
  listen_fd_ = adopted_listen_fd;
  port_ = local_port(listen_fd_);
  for (const TcpPeer& peer : peers) add_peer(peer);
  start();
}

void TcpNode::start() {
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

TcpNode::~TcpNode() {
  shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  MutexLock guard(readers_mutex_);
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
}

void TcpNode::add_peer(const TcpPeer& peer) {
  HLOCK_REQUIRE(!peer.node.is_none() && peer.node != self_,
                "peer must be another real node");
  MutexLock guard(peers_mutex_);
  peer_ports_[peer.node.value()] = peer.port;
}

void TcpNode::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    MutexLock guard(readers_mutex_);
    accepted_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpNode::reader_loop(int fd) {
  while (auto message = read_frame(fd)) {
    if (message->to != self_) {
      HLOCK_LOG(kWarn, "tcp-node " << to_string(self_)
                                   << ": dropping misrouted frame to "
                                   << to_string(message->to));
      break;
    }
    inbox_.push(std::move(*message), Mailbox::Clock::now());
  }
  ::close(fd);
}

void TcpNode::send(const proto::Message& message) {
  if (stopping_.load()) return;
  HLOCK_REQUIRE(message.from == self_,
                "a TcpNode only sends its own node's messages");

  std::uint16_t port = 0;
  Channel* channel = nullptr;
  {
    MutexLock guard(peers_mutex_);
    auto it = peer_ports_.find(message.to.value());
    HLOCK_REQUIRE(it != peer_ports_.end(),
                  "unknown peer: " + to_string(message.to));
    port = it->second;
    auto& slot = channels_[message.to.value()];
    if (!slot) slot = std::make_unique<Channel>();
    channel = slot.get();
  }

  MutexLock guard(channel->send_mutex);
  if (channel->fd < 0) channel->fd = connect_loopback(port);
  if (!write_frame(channel->fd, message)) {
    ::close(channel->fd);
    channel->fd = -1;
    if (!stopping_.load()) {
      throw UsageError("tcp-node: send to " + to_string(message.to) +
                       " failed");
    }
    return;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<proto::Message> TcpNode::recv(proto::NodeId node) {
  HLOCK_REQUIRE(node == self_, "a TcpNode only receives for its own node");
  return inbox_.pop();
}

std::optional<proto::Message> TcpNode::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  HLOCK_REQUIRE(node == self_, "a TcpNode only receives for its own node");
  return inbox_.pop_until(Mailbox::Clock::now() + timeout);
}

void TcpNode::shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  inbox_.close();
  {
    // Unblock readers parked on connections whose remote end is still up.
    MutexLock guard(readers_mutex_);
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  MutexLock guard(peers_mutex_);
  for (auto& [node, channel] : channels_) {
    MutexLock send_guard(channel->send_mutex);
    if (channel->fd >= 0) {
      ::shutdown(channel->fd, SHUT_RDWR);
      ::close(channel->fd);
      channel->fd = -1;
    }
  }
}

}  // namespace hlock::transport
