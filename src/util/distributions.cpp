#include "util/distributions.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hlock {

std::string to_string(DistKind kind) {
  switch (kind) {
    case DistKind::kConstant:
      return "constant";
    case DistKind::kUniform:
      return "uniform";
    case DistKind::kExponential:
      return "exponential";
    case DistKind::kLogNormal:
      return "lognormal";
  }
  return "unknown";
}

DurationDist::DurationDist(DistKind kind, SimTime mean, double spread)
    : kind_(kind), mean_(mean), spread_(spread) {
  HLOCK_REQUIRE(mean.count_ns() >= 0, "distribution mean must be >= 0");
  HLOCK_REQUIRE(spread >= 0.0, "distribution spread must be >= 0");
}

DurationDist DurationDist::constant(SimTime mean) {
  return {DistKind::kConstant, mean, 0.0};
}
DurationDist DurationDist::uniform(SimTime mean, double spread) {
  return {DistKind::kUniform, mean, spread};
}
DurationDist DurationDist::exponential(SimTime mean) {
  return {DistKind::kExponential, mean, 0.0};
}
DurationDist DurationDist::lognormal(SimTime mean, double sigma) {
  return {DistKind::kLogNormal, mean, sigma};
}

SimTime DurationDist::sample(Rng& rng) const {
  const double mean_ns = static_cast<double>(mean_.count_ns());
  double value_ns = mean_ns;
  switch (kind_) {
    case DistKind::kConstant:
      break;
    case DistKind::kUniform: {
      const double lo = mean_ns * (1.0 - spread_);
      const double hi = mean_ns * (1.0 + spread_);
      value_ns = lo + (hi - lo) * rng.uniform01();
      break;
    }
    case DistKind::kExponential: {
      // Inverse-CDF sampling; 1 - u avoids log(0).
      value_ns = -mean_ns * std::log(1.0 - rng.uniform01());
      break;
    }
    case DistKind::kLogNormal: {
      // Box-Muller normal, then exponentiate. mu chosen so that the
      // distribution's mean (not median) equals the configured mean.
      const double u1 = 1.0 - rng.uniform01();
      const double u2 = rng.uniform01();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      const double mu = std::log(mean_ns) - 0.5 * spread_ * spread_;
      value_ns = std::exp(mu + spread_ * z);
      break;
    }
  }
  if (value_ns < 0.0) value_ns = 0.0;
  return SimTime::ns(static_cast<std::int64_t>(value_ns + 0.5));
}

std::string DurationDist::describe() const {
  std::ostringstream os;
  os << to_string(kind_) << "(mean=" << to_string(mean_);
  if (kind_ == DistKind::kUniform || kind_ == DistKind::kLogNormal) {
    os << ", spread=" << spread_;
  }
  os << ")";
  return os.str();
}

}  // namespace hlock
