#include "naimi/naimi_automaton.hpp"

#include <sstream>

#include "util/check.hpp"

namespace hlock::naimi {

using proto::Message;
using proto::NaimiRequest;
using proto::NaimiToken;
using proto::Payload;

NaimiAutomaton::NaimiAutomaton(NodeId self, LockId lock, bool initially_token,
                               NodeId initial_owner,
                               std::uint32_t initial_epoch)
    : self_(self), lock_(lock), owner_(initial_owner),
      next_(NodeId::none()), has_token_(initially_token),
      recovery_epoch_(initial_epoch) {
  if (initially_token) {
    HLOCK_REQUIRE(initial_owner.is_none(),
                  "the initial token node must be the tree root");
  } else {
    HLOCK_REQUIRE(!initial_owner.is_none() && initial_owner != self,
                  "non-token nodes need a probable owner other than self");
  }
}

Effects NaimiAutomaton::request() {
  HLOCK_REQUIRE(!in_cs_, "node is already inside the critical section");
  HLOCK_REQUIRE(!requesting_, "a request is already outstanding");
  Effects fx;
  if (owner_.is_none()) {
    // We are the root: the token is here and idle (if it were in use or
    // promised, a previous request would have re-rooted the tree away).
    HLOCK_INVARIANT(has_token_, "tree root without the token");
    in_cs_ = true;
    fx.entered_cs = true;
    return fx;
  }
  requesting_ = true;
  const std::uint64_t seq = next_seq_++;
  send(owner_, NaimiRequest{self_, seq}, fx, proto::RequestId{self_, seq});
  // Path reversal: we are the new last requester, hence the new root.
  owner_ = NodeId::none();
  return fx;
}

Effects NaimiAutomaton::release() {
  HLOCK_REQUIRE(in_cs_, "release without holding the lock");
  Effects fx;
  in_cs_ = false;
  if (!next_.is_none()) {
    has_token_ = false;
    send(next_, NaimiToken{}, fx, proto::RequestId{next_, next_req_seq_});
    next_ = NodeId::none();
    next_req_seq_ = 0;
  }
  return fx;
}

Effects NaimiAutomaton::on_message(const Message& message) {
  HLOCK_REQUIRE(message.to == self_, "message delivered to the wrong node");
  HLOCK_REQUIRE(message.lock == lock_,
                "message delivered to the wrong lock instance");
  Effects fx;
  if (message.epoch != recovery_epoch_) {
    // Stale-drop rule (docs/recovery.md): see HierAutomaton::on_message.
    fx.stale_drop = true;
    return fx;
  }
  if (const auto* request = std::get_if<NaimiRequest>(&message.payload)) {
    handle_request(*request, fx);
  } else if (std::get_if<NaimiToken>(&message.payload)) {
    handle_token(fx);
  } else {
    HLOCK_INVARIANT(false,
                    "non-Naimi payload delivered to a NaimiAutomaton");
  }
  return fx;
}

Effects NaimiAutomaton::install_fence(const proto::EpochFence& fence) {
  Effects fx;
  if (fence.epoch <= recovery_epoch_) return fx;  // duplicate/stale fence
  recovery_epoch_ = fence.epoch;

  // The coordinator includes the new root's own waiting entry in the queue
  // (the hierarchical protocol serves it through its mode-aware queue);
  // here the root is served by seating the token directly, so every node
  // drops root entries before threading the FIFO list. All nodes filter
  // identically, so the resulting chain is consistent cluster-wide.
  std::vector<proto::QueuedRequest> queue;
  queue.reserve(fence.queue.size());
  for (const proto::QueuedRequest& entry : fence.queue) {
    if (entry.requester != fence.new_root) queue.push_back(entry);
  }

  // Rebuild the two distributed structures from scratch: the FIFO list
  // becomes new_root -> queue[0] -> ... -> queue[k-1], and the probable-
  // owner tree becomes a star around the list's tail (the logical "last
  // requester"). Pre-crash next pointers and owner links are discarded —
  // every surviving waiter reported its request and appears in the queue.
  next_ = NodeId::none();
  next_req_seq_ = 0;
  const NodeId tail =
      queue.empty() ? fence.new_root : queue.back().requester;
  owner_ = tail == self_ ? NodeId::none() : tail;

  if (self_ == fence.new_root) {
    has_token_ = true;
    if (requesting_) {
      // We were waiting when the holder crashed; the regenerated token
      // seats here first, so our own request is served on the spot.
      requesting_ = false;
      in_cs_ = true;
      fx.entered_cs = true;
    }
    if (!queue.empty()) {
      const proto::QueuedRequest& first = queue.front();
      if (in_cs_) {
        next_ = first.requester;
        next_req_seq_ = first.seq;
      } else {
        // Idle root: hand the regenerated token straight to the first
        // surviving waiter.
        has_token_ = false;
        send(first.requester, NaimiToken{}, fx,
             proto::RequestId{first.requester, first.seq});
      }
    }
    return fx;
  }

  // Demoting has_token_ below only happens when this node was fenced out
  // while believing it held the token (false suspicion or a doctored double
  // fence); it must stop arbitrating either way.
  has_token_ = false;
  in_cs_ = false;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].requester != self_) continue;
    HLOCK_INVARIANT(requesting_,
                    "fence queued this node without an outstanding request");
    if (i + 1 < queue.size()) {
      next_ = queue[i + 1].requester;
      next_req_seq_ = queue[i + 1].seq;
    }
    break;
  }
  return fx;
}

void NaimiAutomaton::handle_request(const NaimiRequest& request, Effects& fx) {
  HLOCK_INVARIANT(request.requester != self_,
                  "a node's own request was routed back to it");
  if (owner_.is_none()) {
    // We are the root: the requester queues behind us — either it gets the
    // idle token immediately, or it becomes our successor.
    if (has_token_ && !in_cs_ && !requesting_) {
      has_token_ = false;
      send(request.requester, NaimiToken{}, fx,
           proto::RequestId{request.requester, request.seq});
    } else {
      HLOCK_INVARIANT(next_.is_none(),
                      "root already promised the token to a successor");
      next_ = request.requester;
      next_req_seq_ = request.seq;
    }
  } else {
    // Not the root: relay toward the probable owner.
    send(owner_, request, fx,
         proto::RequestId{request.requester, request.seq});
  }
  // Path reversal: the requester is the last requester we know of, so it
  // becomes our probable owner — this is what compresses future paths.
  owner_ = NodeId{request.requester};
}

void NaimiAutomaton::handle_token(Effects& fx) {
  HLOCK_INVARIANT(requesting_, "token arrived without an outstanding request");
  HLOCK_INVARIANT(!has_token_, "token arrived at the current token holder");
  has_token_ = true;
  requesting_ = false;
  in_cs_ = true;
  fx.entered_cs = true;
}

void NaimiAutomaton::send(NodeId to, Payload payload, Effects& fx,
                          proto::RequestId request) const {
  HLOCK_INVARIANT(!to.is_none(), "attempted to send to the null node");
  Message message{self_, to, lock_, std::move(payload)};
  message.request = request;
  message.epoch = recovery_epoch_;
  fx.messages.push_back(std::move(message));
}

std::string NaimiAutomaton::fingerprint() const {
  std::ostringstream os;
  os << owner_.value() << '/' << next_.value() << '/'
     << (has_token_ ? 'T' : 't') << (in_cs_ ? 'C' : 'c')
     << (requesting_ ? 'R' : 'r') << next_seq_ << 'n' << next_req_seq_
     << 'E' << recovery_epoch_;
  return os.str();
}

std::string NaimiAutomaton::describe() const {
  std::ostringstream os;
  os << to_string(self_) << " owner=" << to_string(owner_)
     << " next=" << to_string(next_) << " token=" << (has_token_ ? 1 : 0)
     << " cs=" << (in_cs_ ? 1 : 0) << " req=" << (requesting_ ? 1 : 0)
     << " epoch=" << recovery_epoch_;
  return os.str();
}

}  // namespace hlock::naimi
