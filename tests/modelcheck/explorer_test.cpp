// Exhaustive model-checking tests: every interleaving of small scripted
// configurations must preserve safety, complete every script (liveness)
// and converge structurally. These subsume the randomized schedules for
// small system sizes.
#include "modelcheck/explorer.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hlock::modelcheck {
namespace {

using proto::LockMode;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;

Script cycle(LockMode mode) {
  return {ScriptOp::acquire(mode), ScriptOp::release()};
}

Script double_cycle(LockMode first, LockMode second) {
  return {ScriptOp::acquire(first), ScriptOp::release(),
          ScriptOp::acquire(second), ScriptOp::release()};
}

void expect_ok(const ExploreResult& result) {
  EXPECT_TRUE(result.ok) << result.violation << "\ntrace:\n"
                         << [&] {
                              std::string out;
                              for (const auto& line : result.trace) {
                                out += "  " + line + "\n";
                              }
                              return out;
                            }();
  EXPECT_GT(result.states_explored, 0u);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(Explorer, SingleNodeAllModes) {
  for (LockMode mode : proto::kRealModes) {
    const auto result = explore({cycle(mode)});
    expect_ok(result);
    EXPECT_EQ(result.terminal_states, 1u) << to_string(mode);
  }
}

TEST(Explorer, TwoNodesExclusive) {
  const auto result = explore({cycle(kW), cycle(kW)});
  expect_ok(result);
}

TEST(Explorer, TwoNodesReaderWriter) {
  expect_ok(explore({cycle(kR), cycle(kW)}));
  expect_ok(explore({cycle(kIR), cycle(kW)}));
  expect_ok(explore({cycle(kR), cycle(kIW)}));
}

TEST(Explorer, TwoNodesCompatiblePairs) {
  expect_ok(explore({cycle(kIR), cycle(kIR)}));
  expect_ok(explore({cycle(kR), cycle(kR)}));
  expect_ok(explore({cycle(kIW), cycle(kIW)}));
  expect_ok(explore({cycle(kIR), cycle(kIW)}));
}

TEST(Explorer, UpgradePairs) {
  const Script upgrader{ScriptOp::acquire(kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  expect_ok(explore({upgrader, cycle(kIR)}));
  expect_ok(explore({upgrader, cycle(kR)}));
  expect_ok(explore({upgrader, cycle(kW)}));
  expect_ok(explore({upgrader, upgrader}));
}

TEST(Explorer, ThreeNodesMixedModes) {
  expect_ok(explore({cycle(kIR), cycle(kR), cycle(kW)}));
  expect_ok(explore({cycle(kIW), cycle(kIR), cycle(kU)}));
  expect_ok(explore({cycle(kW), cycle(kW), cycle(kW)}));
}

TEST(Explorer, ThreeNodesWithUpgrader) {
  const Script upgrader{ScriptOp::acquire(kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  const auto result = explore({cycle(kIR), upgrader, cycle(kIR)});
  expect_ok(result);
}

TEST(Explorer, RepeatedAcquisitionsTwoNodes) {
  expect_ok(explore({double_cycle(kR, kW), double_cycle(kW, kR)}));
  expect_ok(explore({double_cycle(kIR, kIR), double_cycle(kW, kIR)}));
}

TEST(Explorer, RepeatedAcquisitionsExerciseReacquirePaths) {
  // Re-acquisition after release walks the stale-hint/re-grant paths that
  // uncovered the epoch and detach races during development.
  const auto result =
      explore({double_cycle(kR, kR), double_cycle(kIW, kR), cycle(kW)});
  expect_ok(result);
  EXPECT_GT(result.states_explored, 1000u);
}

TEST(Explorer, FourNodesReadHeavy) {
  const auto result =
      explore({cycle(kIR), cycle(kIR), cycle(kR), cycle(kW)});
  expect_ok(result);
}

class ExplorerConfigs
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(ExplorerConfigs, AblationConfigsStaySoundUnderFullInterleaving) {
  const auto [queueing, grants, compression, freezing] = GetParam();
  ExploreOptions options;
  options.config.local_queueing = queueing;
  options.config.child_grants = grants;
  options.config.path_compression = compression;
  options.config.freezing = freezing;
  const Script upgrader{ScriptOp::acquire(kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  expect_ok(explore({cycle(kR), cycle(kW), cycle(kIR)}, options));
  expect_ok(explore({upgrader, cycle(kIR)}, options));
  expect_ok(explore({double_cycle(kIR, kW), double_cycle(kR, kIW)},
                    options));
}

INSTANTIATE_TEST_SUITE_P(
    AllFlagCombinations, ExplorerConfigs,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Explorer, PriorityRequestsStaySoundUnderFullInterleaving) {
  // Priorities reorder queues; every interleaving must still be safe and
  // every request served.
  expect_ok(explore({{ScriptOp::acquire(kW, 5), ScriptOp::release()},
                     {ScriptOp::acquire(kW, 0), ScriptOp::release()},
                     {ScriptOp::acquire(kW, 9), ScriptOp::release()}}));
  expect_ok(explore({{ScriptOp::acquire(kR, 1), ScriptOp::release()},
                     {ScriptOp::acquire(kIW, 7), ScriptOp::release()},
                     {ScriptOp::acquire(kIR), ScriptOp::release()}}));
  const Script upgrader{ScriptOp::acquire(kU, 3), ScriptOp::upgrade(),
                        ScriptOp::release()};
  expect_ok(explore({upgrader, cycle(kW)}));
}

TEST(ModelessExplorer, NaimiFullInterleavings) {
  const Script cycle_script{ScriptOp::acquire(kW), ScriptOp::release()};
  for (std::size_t n : {2u, 3u, 4u}) {
    const std::vector<Script> scripts(n, cycle_script);
    const auto result = explore_naimi(scripts);
    EXPECT_TRUE(result.ok) << "n=" << n << ": " << result.violation;
    EXPECT_GT(result.states_explored, 0u);
  }
}

TEST(ModelessExplorer, NaimiRepeatedAcquisitions) {
  const Script twice{ScriptOp::acquire(kW), ScriptOp::release(),
                     ScriptOp::acquire(kW), ScriptOp::release()};
  const auto result = explore_naimi({twice, twice});
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states_explored, 50u);
}

TEST(ModelessExplorer, RaymondFullInterleavings) {
  // n=7 (a full 3-level tree) explodes into tens of millions of
  // interleavings; n<=5 keeps exhaustive coverage of a 2-level tree fast.
  const Script cycle_script{ScriptOp::acquire(kW), ScriptOp::release()};
  for (std::size_t n : {2u, 3u, 5u}) {
    const std::vector<Script> scripts(n, cycle_script);
    const auto result = explore_raymond(scripts);
    EXPECT_TRUE(result.ok) << "n=" << n << ": " << result.violation;
    EXPECT_GT(result.terminal_states, 0u);
  }
}

TEST(ModelessExplorer, RaymondThreeLevelTreeSingleContender) {
  // Depth-2 routing fully interleaved with a root contender.
  std::vector<Script> scripts(7);
  scripts[0] = {ScriptOp::acquire(kW), ScriptOp::release()};
  scripts[6] = {ScriptOp::acquire(kW), ScriptOp::release()};
  const auto result = explore_raymond(scripts);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelessExplorer, RaymondRepeatedAcquisitions) {
  const Script twice{ScriptOp::acquire(kW), ScriptOp::release(),
                     ScriptOp::acquire(kW), ScriptOp::release()};
  const auto result = explore_raymond({twice, twice, twice});
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelessExplorer, RejectsUpgradesAndMalformedScripts) {
  EXPECT_THROW(explore_naimi({{ScriptOp::upgrade()}}), hlock::UsageError);
  EXPECT_THROW(explore_raymond({{ScriptOp::release()}}),
               hlock::UsageError);
  EXPECT_THROW(explore_naimi({}), hlock::UsageError);
}

TEST(Explorer, RejectsMalformedScripts) {
  EXPECT_THROW(explore({}), UsageError);
  EXPECT_THROW(explore({{ScriptOp::release()}}), UsageError);
  EXPECT_THROW(explore({{ScriptOp::upgrade()}}), UsageError);
  EXPECT_THROW(
      explore({{ScriptOp::acquire(kR), ScriptOp::acquire(kR)}}),
      UsageError);
  EXPECT_THROW(explore({{ScriptOp::acquire(LockMode::kNL)}}), UsageError);
}

TEST(Explorer, StateLimitIsEnforced) {
  ExploreOptions options;
  options.max_states = 10;
  const auto result =
      explore({double_cycle(kW, kW), double_cycle(kW, kW)}, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("state limit"), std::string::npos);
}

TEST(Explorer, StateLimitAbortReportsProgressCounts) {
  // The abort is a verdict, not a crash: counters describe the partial
  // exploration and no terminal state was certified.
  ExploreOptions options;
  options.max_states = 25;
  const auto result = explore({cycle(kW), cycle(kW), cycle(kW)}, options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("state limit exceeded (25"),
            std::string::npos)
      << result.violation;
  // The abort fires on the first state past the budget.
  EXPECT_EQ(result.states_explored, 26u);
  EXPECT_GE(result.transitions, result.states_explored - 1);
}

TEST(Explorer, LintedUpgradeScenarioConformsOnEveryInterleaving) {
  // Fairness/conformance pass (spec module): every first-visit path of the
  // Rule 7 upgrade scenario must satisfy Tables 1(a)-(d), including the
  // upgrade freeze of Fig. 6.
  ExploreOptions options;
  options.lint = true;
  const Script upgrader{ScriptOp::acquire(kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  const auto result = explore({upgrader, cycle(kIR), cycle(kR)}, options);
  expect_ok(result);
  EXPECT_TRUE(result.events.empty()) << "no counterexample on OK";
}

TEST(Explorer, LintedMixedScenariosConform) {
  ExploreOptions options;
  options.lint = true;
  expect_ok(explore({cycle(kR), cycle(kW), cycle(kIR)}, options));
  expect_ok(explore({double_cycle(kIW, kR), cycle(kU)}, options));
}

TEST(Explorer, LintedAblationConfigsConform) {
  // The linter mirrors the config: disabled freezing waives fairness,
  // path compression changes Table 1(c) — each variant must still lint
  // clean against its own amended spec.
  const Script upgrader{ScriptOp::acquire(kU), ScriptOp::upgrade(),
                        ScriptOp::release()};
  for (const bool freezing : {true, false}) {
    for (const bool compression : {true, false}) {
      ExploreOptions options;
      options.lint = true;
      options.config.freezing = freezing;
      options.config.path_compression = compression;
      expect_ok(explore({cycle(kR), cycle(kW)}, options));
      expect_ok(explore({upgrader, cycle(kIR)}, options));
    }
  }
}

TEST(Explorer, LintedStateLimitAbortCapturesTheEventTrail) {
  // When exploration fails with lint enabled, the structured events of the
  // offending path ride on the result for post-hoc analysis.
  ExploreOptions options;
  options.lint = true;
  options.max_states = 10;
  const auto result =
      explore({double_cycle(kW, kW), double_cycle(kW, kW)}, options);
  ASSERT_FALSE(result.ok);
  EXPECT_FALSE(result.events.empty());
}

TEST(Explorer, CountsAreConsistent) {
  const auto result = explore({cycle(kR), cycle(kW)});
  expect_ok(result);
  EXPECT_GE(result.transitions, result.states_explored - 1);
}

}  // namespace
}  // namespace hlock::modelcheck
