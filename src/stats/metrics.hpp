// Experiment metrics: message counts and request latencies.
//
// The paper's two headline metrics are (1) the average number of protocol
// messages per application-level lock request and (2) the request latency —
// "the time elapsed between issuing a request and entering the critical
// section". MetricsRegistry collects both across a run; harnesses read one
// registry per simulated cluster.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/message.hpp"
#include "stats/summary.hpp"
#include "util/sim_time.hpp"

namespace hlock::stats {

/// The single source of truth for transport counter fields. Adding a
/// counter means adding ONE line here; the snapshot struct, the atomic
/// struct, snapshot(), for_each() and the telemetry registry fold all
/// derive from this table (previously a new counter was a three-file
/// edit, and the telemetry export would have made it four).
///
///   X(field_name, "short description")
///
/// Grouping (kept for the human-readable to_string): injection-side
/// faults first, then healing-side recoveries, then TCP send/receive
/// recovery.
#define HLOCK_TRANSPORT_COUNTER_FIELDS(X)                                   \
  /* Injection side (faults put on the wire). */                            \
  X(drops, "wire losses (later retransmitted)")                             \
  X(delays, "messages given extra latency")                                 \
  X(duplicates, "extra wire copies injected")                               \
  X(reorders, "messages allowed to be overtaken")                           \
  X(partition_drops, "messages blocked by a partition")                     \
  /* Healing side (recovery actions that masked a fault). */                \
  X(retransmits, "lost messages re-sent")                                   \
  X(duplicates_discarded, "wire copies deduplicated")                       \
  X(resequenced, "overtaken messages re-ordered")                           \
  /* TCP send/receive recovery. */                                          \
  X(send_retries, "failed writes retried with backoff")                     \
  X(reconnects, "channels re-established after failure")                    \
  X(send_failures, "frames dropped after retry exhaustion")                 \
  X(misaddressed_frames, "frames discarded by routing")

/// Plain-value copy of TransportCounters, safe to compare and print.
struct TransportCounterSnapshot {
#define HLOCK_TC_FIELD(name, desc) std::uint64_t name = 0;  ///< desc
  HLOCK_TRANSPORT_COUNTER_FIELDS(HLOCK_TC_FIELD)
#undef HLOCK_TC_FIELD

  /// Total faults put on the wire.
  std::uint64_t faults_injected() const {
    return drops + delays + duplicates + reorders + partition_drops;
  }

  /// Calls `fn(field_name, value)` for every counter, in table order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
#define HLOCK_TC_VISIT(name, desc) fn(#name, name);
    HLOCK_TRANSPORT_COUNTER_FIELDS(HLOCK_TC_VISIT)
#undef HLOCK_TC_VISIT
  }

  bool operator==(const TransportCounterSnapshot&) const = default;
};

/// One-line human-readable rendering of a counter snapshot.
std::string to_string(const TransportCounterSnapshot& snapshot);

/// Cumulative per-transport fault and recovery counters.
///
/// Shared by the fault-injecting transport decorator and the TCP transport's
/// retry path; counters are atomic because transports are touched from
/// receiver, client, and delivery threads concurrently. Relaxed ordering is
/// sufficient — these are statistics, not synchronization.
class TransportCounters {
 public:
#define HLOCK_TC_ATOMIC(name, desc) std::atomic<std::uint64_t> name{0};
  HLOCK_TRANSPORT_COUNTER_FIELDS(HLOCK_TC_ATOMIC)
#undef HLOCK_TC_ATOMIC

  /// Consistent-enough copy of all counters (each load is atomic; the set
  /// is not a cross-counter snapshot, which statistics do not need).
  TransportCounterSnapshot snapshot() const;

  /// Calls `fn(field_name, atomic_counter&)` for every counter, in table
  /// order. The telemetry layer uses this to register one callback series
  /// per field without naming them twice.
  template <typename Fn>
  void for_each(Fn&& fn) const {
#define HLOCK_TC_VISIT(name, desc) fn(#name, name);
    HLOCK_TRANSPORT_COUNTER_FIELDS(HLOCK_TC_VISIT)
#undef HLOCK_TC_VISIT
  }
};

/// Message counts broken down by protocol message kind.
///
/// Counters are atomic: harnesses read totals (progress displays, chaos
/// snapshots) while senders are still counting, and the previous plain
/// integers made every such snapshot read a data race. Relaxed ordering is
/// sufficient — statistics, not synchronization. Like TransportCounters,
/// reads are per-counter atomic, not a cross-counter snapshot.
class MessageCounter {
 public:
  /// Counts one sent message. Thread-safe.
  void add(proto::MessageKind kind);

  /// Messages of one kind. Thread-safe snapshot read.
  std::uint64_t count(proto::MessageKind kind) const;

  /// All messages. Thread-safe snapshot read.
  std::uint64_t total() const;

  /// Calls `fn(kind, count)` for every message kind, in enum order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < proto::kMessageKindCount; ++i) {
      fn(static_cast<proto::MessageKind>(i),
         counts_[i].load(std::memory_order_relaxed));
    }
  }

 private:
  std::array<std::atomic<std::uint64_t>, proto::kMessageKindCount> counts_{};
};

/// Latency samples of completed application-level requests.
class LatencyRecorder {
 public:
  /// Records one completed request's latency.
  void record(SimTime latency);

  /// Number of recorded requests.
  std::size_t count() const { return samples_ms_.size(); }

  /// Latency samples in milliseconds, in completion order.
  const std::vector<double>& samples_ms() const { return samples_ms_; }

  /// Exact summary over all samples (milliseconds).
  Summary summarize() const { return stats::summarize(samples_ms_); }

 private:
  std::vector<double> samples_ms_;
};

/// Everything one experiment run collects.
class MetricsRegistry {
 public:
  MessageCounter& messages() { return messages_; }
  const MessageCounter& messages() const { return messages_; }

  LatencyRecorder& latency() { return latency_; }
  const LatencyRecorder& latency() const { return latency_; }

  /// Messages per completed application-level request — the paper's
  /// Fig. 7/9 metric. Zero when no request completed.
  double messages_per_request() const;

 private:
  MessageCounter messages_;
  LatencyRecorder latency_;
};

}  // namespace hlock::stats
