// Low-level loopback TCP helpers shared by the socket transports:
// listener setup, connection, and the length-prefixed message framing.
//
// Wire frame: 4-byte little-endian payload length, then the binary codec
// encoding of one Message. Frames above a sanity cap are treated as
// corruption.
#pragma once

#include <cstdint>
#include <optional>

#include "proto/message.hpp"

namespace hlock::transport {

/// Largest accepted frame; the biggest legal message (a token with a full
/// queue) is far below this.
inline constexpr std::uint32_t kMaxFrameBytes = 1 << 20;

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the fd.
/// Throws UsageError on failure.
int listen_loopback(std::uint16_t port = 0);

/// The local port a bound socket listens on.
std::uint16_t local_port(int fd);

/// Connects to 127.0.0.1:`port` (blocking) and enables TCP_NODELAY.
/// Throws UsageError on failure.
int connect_loopback(std::uint16_t port);

/// Writes one framed message; false on error or peer close.
bool write_frame(int fd, const proto::Message& message);

/// Reads one framed message; nullopt on clean close, error, oversized or
/// undecodable frame.
std::optional<proto::Message> read_frame(int fd);

}  // namespace hlock::transport
