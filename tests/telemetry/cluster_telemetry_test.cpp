// End-to-end telemetry over a live ThreadCluster: the registry handed in
// through ThreadClusterOptions must account for every operation the
// cluster performs, expose cleanly, and stop polling component state once
// the cluster is gone.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_cluster.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/text_parse.hpp"
#include "telemetry/watchdog.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using telemetry::Sample;
using telemetry::Snapshot;

constexpr std::size_t kNodes = 3;
constexpr int kOpsPerNode = 10;
constexpr double kTotalOps = static_cast<double>(kNodes) * kOpsPerNode;

ThreadClusterOptions instrumented_options(telemetry::Registry& registry,
                                          Protocol protocol) {
  ThreadClusterOptions options;
  options.node_count = kNodes;
  options.protocol = protocol;
  options.seed = 11;
  options.metrics = &registry;
  return options;
}

void run_contended_workload(ThreadCluster& cluster) {
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, i] {
      for (int k = 0; k < kOpsPerNode; ++k) {
        cluster.lock(NodeId{i}, LockId{0}, LockMode::kW);
        cluster.unlock(NodeId{i}, LockId{0});
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

std::uint64_t histogram_family_count(const Snapshot& snap,
                                     std::string_view family) {
  std::uint64_t total = 0;
  for (const Sample& sample : snap.samples) {
    if (telemetry::family_of(sample.name) == family) {
      total += sample.histogram.count;
    }
  }
  return total;
}

TEST(ClusterTelemetry, EveryOperationIsAccountedFor) {
  telemetry::Registry registry;
  telemetry::WatchdogOptions watchdog_options;
  watchdog_options.floor = std::chrono::seconds(60);  // observe, never flag
  telemetry::StallWatchdog watchdog{registry, watchdog_options};

  ThreadClusterOptions options =
      instrumented_options(registry, Protocol::kHierarchical);
  options.watchdog = &watchdog;
  {
    ThreadCluster cluster{options};
    run_contended_workload(cluster);

    const Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.family_sum("hlock_engine_requests_total"), kTotalOps);
    EXPECT_EQ(snap.family_sum("hlock_engine_grants_total"), kTotalOps);
    EXPECT_EQ(snap.family_sum("hlock_engine_releases_total"), kTotalOps);
    // Every grant records a wait, every release a hold; the watchdog
    // brackets each blocking lock() with its own histogram.
    EXPECT_EQ(histogram_family_count(snap, "hlock_wait_ms"), kTotalOps);
    EXPECT_EQ(histogram_family_count(snap, "hlock_hold_ms"), kTotalOps);
    EXPECT_EQ(histogram_family_count(snap, "hlock_request_wait_ms"),
              kTotalOps);
    EXPECT_EQ(watchdog.stalled_total(), 0u);
    EXPECT_EQ(snap.find("hlock_pending_requests")->value, 0.0);

    // Cross-node traffic showed up in the message and transport series.
    EXPECT_GT(snap.family_sum("hlock_messages_sent_total"), 0.0);
    EXPECT_EQ(snap.family_sum("hlock_transport_messages_sent_total"),
              static_cast<double>(cluster.messages_sent()));

    // The token settled somewhere legal after the last grant.
    const Sample* token = snap.find(
        telemetry::labeled("hlock_token_location", {{"lock", "0"}}));
    ASSERT_NE(token, nullptr);
    EXPECT_GE(token->value, 0.0);
    EXPECT_LT(token->value, static_cast<double>(kNodes));

    // Per-node / per-shard structural series exist.
    EXPECT_NE(snap.find(telemetry::labeled("hlock_mailbox_depth",
                                           {{"node", "0"}})),
              nullptr);
    EXPECT_NE(snap.find(telemetry::labeled(
                  "hlock_engine_queue_depth",
                  {{"node", "0"}, {"shard", "0"}})),
              nullptr);
    // All work done: nothing queued, and the token settled on at least one
    // node (hierarchical handoffs can leave more than one automaton in a
    // token-bearing state, so the exact count is protocol detail).
    EXPECT_EQ(snap.family_sum("hlock_engine_queue_depth"), 0.0);
    EXPECT_GE(snap.family_sum("hlock_tokens_held"), 1.0);
    EXPECT_LE(snap.family_sum("hlock_tokens_held"),
              static_cast<double>(kNodes));

    // The whole catalog renders as clean exposition text.
    const std::string text =
        telemetry::render_prometheus(registry.snapshot());
    const telemetry::ParsedExposition parsed =
        telemetry::parse_exposition(text);
    const std::vector<std::string> violations =
        telemetry::check_exposition(parsed);
    EXPECT_TRUE(violations.empty()) << violations.front();
  }
}

TEST(ClusterTelemetry, TransportCallbacksUnregisterWithTheCluster) {
  telemetry::Registry registry;
  {
    ThreadCluster cluster{
        instrumented_options(registry, Protocol::kHierarchical)};
    run_contended_workload(cluster);
    ASSERT_NE(registry.snapshot().find(telemetry::labeled(
                  "hlock_mailbox_depth", {{"node", "0"}})),
              nullptr);
  }
  // The cluster is gone; polling its transport would be use-after-free.
  const Snapshot snap = registry.snapshot();
  for (const Sample& sample : snap.samples) {
    EXPECT_NE(telemetry::family_of(sample.name), "hlock_mailbox_depth")
        << sample.name;
    EXPECT_NE(telemetry::family_of(sample.name),
              "hlock_transport_messages_sent_total")
        << sample.name;
  }
  // Owned engine counters survive for post-mortem reads.
  EXPECT_EQ(snap.family_sum("hlock_engine_grants_total"), kTotalOps);
  // And the snapshot still renders cleanly.
  EXPECT_TRUE(telemetry::check_exposition(
                  telemetry::parse_exposition(
                      telemetry::render_prometheus(snap)))
                  .empty());
}

TEST(ClusterTelemetry, ModeLabelsFollowTheWorkload) {
  telemetry::Registry registry;
  ThreadCluster cluster{
      instrumented_options(registry, Protocol::kHierarchical)};
  cluster.lock(NodeId{0}, LockId{0}, LockMode::kR);
  cluster.unlock(NodeId{0}, LockId{0});
  cluster.lock(NodeId{1}, LockId{0}, LockMode::kW);
  cluster.unlock(NodeId{1}, LockId{0});

  const Snapshot snap = registry.snapshot();
  const auto requests_in = [&snap](const std::string& node,
                                   const std::string& mode) {
    const Sample* sample = snap.find(
        "hlock_engine_requests_total{proto=\"hierarchical\",node=\"" + node +
        "\",mode=\"" + mode + "\"}");
    return sample == nullptr ? -1.0 : sample->value;
  };
  EXPECT_EQ(requests_in("0", "R"), 1.0);
  EXPECT_EQ(requests_in("1", "W"), 1.0);
  EXPECT_EQ(requests_in("1", "R"), 0.0);
}

TEST(ClusterTelemetry, RaymondRunsItsOwnEngineUnderTheDecorator) {
  // Regression: ThreadCluster used to fall back to Naimi silently for
  // Protocol::kRaymond; with telemetry the proto label proves which engine
  // actually ran.
  telemetry::Registry registry;
  ThreadCluster cluster{instrumented_options(registry, Protocol::kRaymond)};
  run_contended_workload(cluster);

  const Snapshot snap = registry.snapshot();
  double raymond_requests = 0.0;
  double other_requests = 0.0;
  for (const Sample& sample : snap.samples) {
    if (telemetry::family_of(sample.name) != "hlock_engine_requests_total") {
      continue;
    }
    if (sample.name.find("proto=\"raymond\"") != std::string::npos) {
      raymond_requests += sample.value;
    } else {
      other_requests += sample.value;
    }
  }
  EXPECT_EQ(raymond_requests, kTotalOps);
  EXPECT_EQ(other_requests, 0.0);
  EXPECT_GT(cluster.messages_sent(), 0u);
}

TEST(ClusterTelemetry, UninstrumentedClustersTouchNoRegistry) {
  telemetry::Registry registry;
  ThreadClusterOptions options;
  options.node_count = 2;
  {
    ThreadCluster cluster{options};
    cluster.lock(NodeId{0}, LockId{0}, LockMode::kW);
    cluster.unlock(NodeId{0}, LockId{0});
  }
  EXPECT_EQ(registry.series_count(), 0u);
}

}  // namespace
}  // namespace hlock::runtime
