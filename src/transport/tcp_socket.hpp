// Low-level loopback TCP helpers shared by the socket transports:
// listener setup, connection, and the length-prefixed message framing.
//
// Wire frame: 4-byte little-endian payload length, then either the binary
// codec encoding of one Message or a batch envelope (proto::kBatchMarker)
// carrying several same-channel messages — the receiver distinguishes the
// two by the body's first byte. Frames above a sanity cap are treated as
// corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/message.hpp"

namespace hlock::transport {

/// Largest accepted frame; the biggest legal message (a token with a full
/// queue) is far below this, and so is a full batch of them.
inline constexpr std::uint32_t kMaxFrameBytes = 1 << 20;

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the fd.
/// Throws UsageError on failure.
int listen_loopback(std::uint16_t port = 0);

/// The local port a bound socket listens on.
std::uint16_t local_port(int fd);

/// Connects to 127.0.0.1:`port` (blocking) and enables TCP_NODELAY.
/// Throws UsageError on failure.
int connect_loopback(std::uint16_t port);

/// Writes one framed message; false on error or peer close.
bool write_frame(int fd, const proto::Message& message);

/// Writes one length-prefixed frame around a pre-encoded body (a single
/// message or a batch envelope); false on error, peer close, or a body
/// above kMaxFrameBytes.
bool write_frame_body(int fd, const std::vector<std::byte>& body);

/// Reads one framed message; nullopt on clean close, error, oversized or
/// undecodable frame. Rejects batch frames — use read_frame_messages on
/// connections that may carry them.
std::optional<proto::Message> read_frame(int fd);

/// Reads one frame and decodes every message it carries (one for a single
/// frame, several for a batch envelope), preserving order. nullopt on clean
/// close, error, oversized or undecodable frame.
std::optional<std::vector<proto::Message>> read_frame_messages(int fd);

}  // namespace hlock::transport
