// Fault-injecting + self-healing transport decorator.
//
// FaultyTransport wraps any Transport and injects seeded, deterministic
// faults on the send path of every ordered (from, to) channel: wire losses
// (retransmitted after a timeout), extra delay, duplication, adjacent
// reordering, and partitions that heal. A reliability sublayer at the
// delivery edge — per-channel sequence numbers with deduplication and
// resequencing, the moral equivalent of TCP over a lossy link — restores
// the exactly-once per-channel FIFO contract the protocol engines assume,
// so a cluster keeps making progress while every fault class fires
// underneath it. Faults that are masked still cost what they cost in the
// real world: latency, retransmissions, and head-of-line blocking.
//
// Determinism: which messages are dropped / delayed / duplicated / allowed
// to be overtaken is a pure function of (plan seed, channel, per-channel
// message index) — wall-clock scheduling jitter changes when messages move,
// never which faults hit them. Every decision and recovery is counted in a
// stats::TransportCounters readable while the transport runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "stats/metrics.hpp"
#include "transport/transport.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Declarative description of the faults to inject. Probabilities are per
/// message; all default to zero so a default plan is a no-fault plan.
struct FaultPlan {
  /// Seeds the per-channel fault streams (each ordered channel gets an
  /// independent split so adding traffic on one channel never perturbs the
  /// fault decisions on another).
  std::uint64_t seed = 1;

  /// Probability a message is lost on the wire. Lost messages are
  /// retransmitted after `retransmit_delay` — the link is lossy, the
  /// layered transport is reliable.
  double drop_probability = 0.0;

  /// Probability a message is held for an extra `delay` sample.
  double delay_probability = 0.0;
  DurationDist delay = DurationDist::uniform(SimTime::ms(2), 0.5);

  /// Probability an extra wire copy of a message is injected (the copy is
  /// recognized by its sequence number and discarded at the edge).
  double duplicate_probability = 0.0;

  /// Probability a message may be overtaken by its channel successors (the
  /// edge resequencer restores order before the inner transport sees it).
  double reorder_probability = 0.0;

  /// Retransmission timeout for lost messages, and the window an overtaken
  /// message lags behind its successors.
  SimTime retransmit_delay = SimTime::ms(2);

  /// A partition separates `side_a` from every other node starting at
  /// transport construction; messages crossing it are buffered and
  /// delivered when it heals, `heal_after` later.
  struct Partition {
    std::vector<proto::NodeId> side_a;
    SimTime heal_after = SimTime::ms(50);
  };
  std::vector<Partition> partitions;

  /// True if this plan injects any fault at all.
  bool any() const {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           duplicate_probability > 0.0 || reorder_probability > 0.0 ||
           !partitions.empty();
  }
};

/// See file comment.
class FaultyTransport final : public Transport {
 public:
  /// Takes ownership of `inner` and starts the wire-delivery thread.
  /// Throws UsageError if a probability lies outside [0, 1].
  FaultyTransport(std::unique_ptr<Transport> inner, const FaultPlan& plan);

  /// Stops the wire and shuts the inner transport down.
  ~FaultyTransport() override;

  /// Accepts a message onto the (possibly faulty) wire. Thread-safe.
  void send(const proto::Message& message) override
      HLOCK_EXCLUDES(mutex_);

  std::optional<proto::Message> recv(proto::NodeId node) override;
  /// Batch drain, delegated to the inner transport (fault decisions happen
  /// on the send side; by delivery time the batch is already fault-shaped).
  std::vector<proto::Message> recv_ready(proto::NodeId node) override;
  std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) override;

  /// Drops undelivered wire entries, stops the delivery thread, and shuts
  /// the inner transport down.
  void shutdown() override HLOCK_EXCLUDES(mutex_);

  /// Messages accepted by send() — logical messages, not wire copies.
  std::uint64_t messages_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }

  /// Encoded bytes shipped by the inner transport (wire copies included).
  std::uint64_t bytes_sent() const override { return inner_->bytes_sent(); }

  /// Inner-transport inbox depth (wire-resident messages are not counted —
  /// they have not been delivered anywhere yet).
  std::size_t inbox_depth(proto::NodeId node) const override {
    return inner_->inbox_depth(node);
  }

  /// Splits the cluster into `side_a` vs everyone else for `heal_after`
  /// (wall time from now). Crossing messages are buffered until the heal.
  /// Callable while traffic flows.
  void partition(const std::vector<proto::NodeId>& side_a,
                 SimTime heal_after) HLOCK_EXCLUDES(mutex_);

  /// Fault and healing counters, live.
  const stats::TransportCounters& counters() const { return counters_; }

  Transport& inner() { return *inner_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One copy of a message travelling the simulated wire.
  struct WireEntry {
    Clock::time_point deliver_at;
    std::uint64_t wire_seq = 0;     ///< global tie-break, keeps pops stable
    std::uint64_t channel_key = 0;  ///< packed (from, to)
    std::uint64_t channel_seq = 0;  ///< per-channel sequence (dedup/reorder)
    proto::Message message;
    /// Min-heap by (deliver_at, wire_seq) via inverted comparison.
    bool operator<(const WireEntry& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return wire_seq > other.wire_seq;
    }
  };

  /// Send-side and edge-side state of one ordered channel.
  struct ChannelState {
    Rng rng;                            ///< fault-decision stream
    std::uint64_t next_send_seq = 0;    ///< assigned at send()
    std::uint64_t next_deliver_seq = 0; ///< edge: next in-order sequence
    Clock::time_point fifo_floor{};     ///< non-overtakable delivery floor
    /// Out-of-order arrivals held until the gap below them fills.
    std::map<std::uint64_t, proto::Message> held;
  };

  struct ActivePartition {
    std::unordered_set<std::uint32_t> side_a;
    Clock::time_point heal_at;
  };

  ChannelState& channel_state(std::uint64_t key) HLOCK_REQUIRES(mutex_);
  /// True if (from, to) crosses an unhealed partition; `release_at` gets
  /// the latest heal time among the partitions crossed.
  bool crosses_partition(std::uint32_t from, std::uint32_t to,
                         Clock::time_point now, Clock::time_point* release_at)
      HLOCK_REQUIRES(mutex_);
  /// Delivery thread: pops matured wire entries and runs the edge
  /// (dedup + resequence) before forwarding to the inner transport.
  void pump_loop() HLOCK_EXCLUDES(mutex_);
  /// Blocks (holding `mutex_`) until stopping or a wire entry matured, then
  /// moves every in-order deliverable message into `ready`. False once the
  /// transport is stopping.
  bool collect_ready(std::vector<proto::Message>& ready)
      HLOCK_REQUIRES(mutex_);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  stats::TransportCounters counters_;

  Mutex mutex_;
  CondVar cv_;
  std::priority_queue<WireEntry> wire_ HLOCK_GUARDED_BY(mutex_);
  std::map<std::uint64_t, ChannelState> channels_ HLOCK_GUARDED_BY(mutex_);
  std::vector<ActivePartition> partitions_ HLOCK_GUARDED_BY(mutex_);
  std::uint64_t next_wire_seq_ HLOCK_GUARDED_BY(mutex_) = 0;
  bool stopping_ HLOCK_GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<bool> shutdown_done_{false};
  /// sched::Thread so the schedule explorer controls the pump's
  /// interleaving with senders and the teardown (docs/sched.md).
  sched::Thread pump_;
};

}  // namespace hlock::transport
