// Fairness and freezing, step by step (paper §3.3-§3.4, Figs. 5-6).
//
// Drives a five-node simulated cluster through the paper's starvation
// scenario and prints the protocol's decisions: a writer queues behind a
// stream of readers; freezing stops later readers from bypassing it; the
// writer proceeds as soon as the in-flight readers drain. Then the same for
// a Rule 7 upgrade.
//
// Build & run:  ./build/examples/upgrade_fairness_demo
#include <cstdio>
#include <vector>

#include "runtime/sim_cluster.hpp"
#include "workload/op_plan.hpp"

using namespace hlock;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;

namespace {

const LockId kLock{0};

struct Tracker {
  std::vector<std::string> events;

  void attach(runtime::SimCluster& cluster) {
    cluster.set_grant_handler([this, &cluster](NodeId node, LockId,
                                               bool upgraded) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "t=%-10s %s %s",
                    to_string(cluster.simulator().now()).c_str(),
                    to_string(node).c_str(),
                    upgraded ? "completed its upgrade to W"
                             : "entered its critical section");
      events.push_back(buf);
      std::puts(buf);
    });
  }
};

}  // namespace

int main() {
  runtime::SimClusterOptions options;
  options.node_count = 5;
  options.protocol = runtime::Protocol::kHierarchical;
  options.message_latency = DurationDist::constant(SimTime::ms(1));
  runtime::SimCluster cluster{options};
  Tracker tracker;
  tracker.attach(cluster);
  sim::Simulator& sim = cluster.simulator();

  std::puts("== part 1: freezing prevents writer starvation ==");
  std::puts("readers 1-3 take IR; node 4 requests W; reader 1 retries\n");

  cluster.request(NodeId{1}, kLock, LockMode::kIR);
  cluster.request(NodeId{2}, kLock, LockMode::kIR);
  cluster.request(NodeId{3}, kLock, LockMode::kIR);
  sim.run_to_completion();

  cluster.request(NodeId{4}, kLock, LockMode::kW);
  sim.run_to_completion();
  std::printf("   -> writer is queued; token node froze %s\n",
              to_string(cluster
                            .hier_automaton(
                                NodeId{1},
                                kLock)  // node1 received the token first
                            .frozen())
                  .c_str());

  // Reader 1 releases and immediately re-requests: without Rule 6 it would
  // bypass the writer; with freezing it must wait behind it.
  cluster.release(NodeId{1}, kLock);
  sim.run_to_completion();
  cluster.request(NodeId{1}, kLock, LockMode::kIR);
  sim.run_to_completion();
  std::puts("   -> re-requested IR is NOT granted (frozen), writer first");

  cluster.release(NodeId{2}, kLock);
  cluster.release(NodeId{3}, kLock);
  sim.run_to_completion();
  std::puts("   -> all readers drained; the writer got the token");
  cluster.release(NodeId{4}, kLock);
  sim.run_to_completion();
  cluster.release(NodeId{1}, kLock);
  sim.run_to_completion();

  std::puts("\n== part 2: atomic upgrade (Rule 7) ==");
  std::puts("node 2 reads under U while node 3 holds IR, then upgrades\n");
  cluster.request(NodeId{3}, kLock, LockMode::kIR);
  sim.run_to_completion();
  cluster.request(NodeId{2}, kLock, LockMode::kU);
  sim.run_to_completion();
  cluster.upgrade(NodeId{2}, kLock);
  sim.run_to_completion();
  std::puts("   -> upgrade waits: node 3 still holds IR");
  cluster.release(NodeId{3}, kLock);
  sim.run_to_completion();
  cluster.release(NodeId{2}, kLock);
  sim.run_to_completion();

  std::printf("\n%zu grant events total; %llu protocol messages\n",
              tracker.events.size(),
              static_cast<unsigned long long>(
                  cluster.metrics().messages().total()));
  return 0;
}
