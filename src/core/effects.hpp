// Outputs of one protocol-automaton step.
//
// Automatons are pure state machines: they never touch a transport or a
// clock. Every API call and message delivery returns an Effects value that
// the runtime interprets — messages to transmit and local grant events to
// surface to the waiting application. This keeps the protocol testable in
// isolation and identical across the simulator and the threaded transport.
#pragma once

#include <vector>

#include "proto/message.hpp"
#include "trace/event.hpp"

namespace hlock::core {

/// What one automaton step asks the runtime to do.
struct Effects {
  /// Messages to hand to the transport, in emission order (order matters:
  /// transports provide per-destination FIFO channels).
  std::vector<proto::Message> messages;

  /// Structured protocol events describing every rule application this step
  /// performed, in causal order. Populated only when the automaton's config
  /// enables trace_events; timestamps are left zero for the runtime to
  /// stamp (automatons hold no clock). Input to the conformance linter.
  std::vector<trace::TraceEvent> events;

  /// The node's own outstanding request was granted during this step; the
  /// node is now inside the critical section (automaton held() gives the
  /// mode).
  bool entered_cs = false;

  /// A Rule 7 upgrade completed during this step; held() is now kW.
  bool upgraded = false;

  /// The delivered message carried a recovery epoch older than the
  /// automaton's and was dropped unprocessed (docs/recovery.md); runtimes
  /// count these into their stale-drop telemetry.
  bool stale_drop = false;
};

}  // namespace hlock::core
