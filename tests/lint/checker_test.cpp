// Conformance-checker tests: clean executions lint clean, and seeded spec
// violations — a mutated Table 1(b) grant, a skipped Table 1(d) freeze, a
// FIFO inversion of a grantable waiter, incompatible holds,
// token-conservation breaks, starvation and Table 1(c) mismatches — are
// each flagged with the right kind. The synthetic traces below construct
// events directly; they pin the checker's judgment, including the two
// behaviors it must NOT flag: the token's in-flight window and the legal
// single-pass bypass of ungrantable queue entries.
#include "lint/checker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/sim_cluster.hpp"

namespace hlock::lint {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using trace::EventKind;
using trace::TraceEvent;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;

/// Event-construction shorthand for synthetic traces.
TraceEvent make(EventKind kind, std::uint32_t node, std::uint32_t peer,
                LockMode mode, LockMode ctx, bool token,
                std::uint64_t seq = 0) {
  TraceEvent event;
  event.kind = kind;
  event.node = NodeId{node};
  event.peer = NodeId{peer};
  event.lock = LockId{0};
  event.mode = mode;
  event.ctx = ctx;
  event.token = token;
  event.seq = seq;
  return event;
}

LintOptions with_token0() {
  LintOptions options;
  options.initial_token = NodeId{0};
  return options;
}

void expect_single(const LintReport& report, ViolationKind kind) {
  ASSERT_EQ(report.violations.size(), 1u) << report.render();
  EXPECT_EQ(report.violations[0].kind, kind) << report.render();
}

// ---- clean executions ------------------------------------------------------

TEST(LintChecker, RealSimulatedExecutionLintsClean) {
  runtime::SimClusterOptions options;
  options.node_count = 5;
  options.message_latency = DurationDist::constant(SimTime::ms(1));
  options.hier_config.trace_events = true;
  runtime::SimCluster cluster{options};

  Checker checker{with_token0()};
  cluster.set_event_observer(
      [&checker](const TraceEvent& event) { checker.add(event); });
  cluster.set_grant_handler([](NodeId, LockId, bool) {});

  // Mixed-mode contention including a Rule 7 upgrade.
  cluster.request(NodeId{1}, LockId{0}, kIR);
  cluster.request(NodeId{2}, LockId{0}, kR);
  cluster.request(NodeId{3}, LockId{0}, kU);
  cluster.simulator().run_to_completion();
  // Rule 7: the upgrade freezes IR/R and completes once both release.
  cluster.upgrade(NodeId{3}, LockId{0});
  cluster.simulator().run_to_completion();
  for (std::uint32_t node : {1u, 2u, 3u}) {
    cluster.release(NodeId{node}, LockId{0});
    cluster.simulator().run_to_completion();
  }
  cluster.request(NodeId{4}, LockId{0}, kW);
  cluster.simulator().run_to_completion();
  cluster.release(NodeId{4}, LockId{0});
  cluster.simulator().run_to_completion();

  const LintReport report = checker.finish();
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_GT(report.events_checked, 10u);
}

TEST(LintChecker, TokenInFlightWindowIsNotAViolation) {
  // Between a token-transfer and the destination's first token-flagged
  // act, the destination lawfully keeps acting as a non-token node.
  const std::vector<TraceEvent> events = {
      make(EventKind::kTokenTransfer, 0, 2, kU, kNL, true, 7),
      make(EventKind::kQueue, 2, 1, kR, kU, false, 8),  // still in flight
      make(EventKind::kGrant, 2, 1, kR, kU, true, 8),   // delivery observed
  };
  const LintReport report = check(events, with_token0());
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(LintChecker, SinglePassBypassOfUngrantableWaitersIsLegal) {
  // "Grant as many compatible requests as possible": a queue-service pass
  // may overtake entries that are ungrantable at decision time — here the
  // IW head conflicts with the shipped owned context R — so transferring
  // to the later U requester is not an inversion.
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 0, 1, kIW, kR, true, 1),
      make(EventKind::kFreeze, 0, 0, kNL, kNL, true),  // frozen set {R,U}
      make(EventKind::kQueue, 0, 2, kU, kR, true, 2),
      make(EventKind::kTokenTransfer, 0, 2, kU, kR, true, 2),
  };
  std::vector<TraceEvent> trace = events;
  trace[1].modes = proto::ModeSet::of({kR, kU});
  const LintReport report = check(trace, with_token0());
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(LintChecker, BypassOfAWaiterFrozenForAnEarlierRequestIsLegal) {
  // The R waiter is frozen on behalf of the still-earlier W request, so
  // the IW transfer past it is the freeze doing its job, not unfairness
  // (the W head itself conflicts with the shipped context R).
  std::vector<TraceEvent> trace = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kFreeze, 0, 0, kNL, kNL, true),
      make(EventKind::kQueue, 0, 2, kR, kR, true, 2),
      make(EventKind::kQueue, 0, 3, kIW, kR, true, 3),
      make(EventKind::kTokenTransfer, 0, 3, kIW, kR, true, 3),
  };
  trace[1].modes = proto::ModeSet::of({kIR, kR, kU});
  const LintReport report = check(trace, with_token0());
  EXPECT_TRUE(report.ok()) << report.render();
}

// ---- seeded violations -----------------------------------------------------

TEST(LintChecker, FlagsMutatedTable1bGrant) {
  // A non-token node owning IR grants R: Table 1(b) gives no authority.
  const std::vector<TraceEvent> events = {
      make(EventKind::kGrant, 1, 2, kR, kIR, false, 3),
  };
  expect_single(check(events), ViolationKind::kUnauthorizedGrant);
}

TEST(LintChecker, FlagsTokenCopyGrantWhereSpecDemandsTransfer) {
  // The token owning IR copy-grants R; the spec requires the token itself
  // to move (requested exceeds owned).
  const std::vector<TraceEvent> events = {
      make(EventKind::kGrant, 0, 1, kR, kIR, true, 1),
  };
  expect_single(check(events, with_token0()),
                ViolationKind::kUnauthorizedGrant);
}

TEST(LintChecker, FlagsSkippedTable1dFreeze) {
  // The token owning R queues an incompatible W request and then grants
  // without ever freezing {IR,R,U}.
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kGrant, 0, 2, kR, kR, true, 2),
  };
  expect_single(check(events, with_token0()), ViolationKind::kMissingFreeze);
}

TEST(LintChecker, AcceptsTheFreezeWhenItIsEmitted) {
  // Same trace with the owed kFreeze in place, resolved by shipping the
  // token to the W requester: conformant.
  std::vector<TraceEvent> trace = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kFreeze, 0, 0, kNL, kNL, true),
      make(EventKind::kTokenTransfer, 0, 1, kW, kNL, true, 1),
  };
  trace[1].modes = proto::ModeSet::of({kIR, kR, kU});
  const LintReport report = check(trace, with_token0());
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(LintChecker, FlagsFifoInversionOfAGrantableWaiter) {
  // node1's R request is queued at the token and perfectly grantable
  // (nothing owned conflicts, nothing frozen), yet the token ships to the
  // later W requester: a genuine fairness inversion.
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 0, 1, kR, kNL, true, 1),
      make(EventKind::kTokenTransfer, 0, 2, kW, kNL, true, 2),
  };
  expect_single(check(events, with_token0()), ViolationKind::kFifoInversion);
}

TEST(LintChecker, FlagsGrantOfAFrozenMode) {
  std::vector<TraceEvent> trace = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kFreeze, 0, 0, kNL, kNL, true),
      make(EventKind::kGrant, 0, 2, kR, kR, true, 2),
  };
  trace[1].modes = proto::ModeSet::of({kIR, kR, kU});
  expect_single(check(trace, with_token0()), ViolationKind::kFrozenGrant);
}

TEST(LintChecker, FlagsIncompatibleConcurrentHolds) {
  const std::vector<TraceEvent> events = {
      make(EventKind::kEnterCs, 1, 0, kR, kNL, false),
      make(EventKind::kEnterCs, 2, 0, kW, kNL, true),
  };
  expect_single(check(events), ViolationKind::kIncompatibleHolds);
}

TEST(LintChecker, FlagsTokenDuplication) {
  // node0 is seen acting as the token; node1 then claims it too.
  const std::vector<TraceEvent> events = {
      make(EventKind::kGrant, 0, 2, kR, kR, true, 1),
      make(EventKind::kGrant, 1, 3, kIR, kR, true, 2),
  };
  expect_single(check(events), ViolationKind::kTokenConservation);
}

TEST(LintChecker, FlagsTokenClaimDuringFlight) {
  // While the token travels to node2, the sender acts as holder again.
  const std::vector<TraceEvent> events = {
      make(EventKind::kTokenTransfer, 0, 2, kW, kNL, true, 1),
      make(EventKind::kGrant, 0, 3, kR, kR, true, 2),
  };
  expect_single(check(events, with_token0()),
                ViolationKind::kTokenConservation);
}

TEST(LintChecker, FlagsStarvation) {
  LintOptions options = with_token0();
  options.starvation_limit = 3;
  std::vector<TraceEvent> trace = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kFreeze, 0, 0, kNL, kNL, true),
  };
  trace[1].modes = proto::ModeSet::of({kIR, kR, kU});
  for (int i = 0; i < 6; ++i) {
    trace.push_back(make(EventKind::kNote, 0, 0, kNL, kNL, false));
  }
  expect_single(check(trace, options), ViolationKind::kStarvation);
}

TEST(LintChecker, FlagsQueueWhereTable1cSaysForward) {
  LintOptions options;
  options.path_compression = false;  // the table applies verbatim
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 1, 2, kR, kIR, false, 1),
  };
  expect_single(check(events, options),
                ViolationKind::kQueueForwardMismatch);
}

TEST(LintChecker, FlagsForwardWhereTable1cSaysQueue) {
  LintOptions options;
  options.path_compression = false;
  const std::vector<TraceEvent> events = {
      make(EventKind::kForward, 1, 2, kR, kR, false, 1),
  };
  expect_single(check(events, options),
                ViolationKind::kQueueForwardMismatch);
}

TEST(LintChecker, FlagsForwardWhilePendingUnderPathCompression) {
  // Path compression makes every pending node absorbing; forwarding while
  // pending contradicts it.
  const std::vector<TraceEvent> events = {
      make(EventKind::kForward, 1, 2, kW, kIR, false, 1),
  };
  expect_single(check(events), ViolationKind::kQueueForwardMismatch);
}

TEST(LintChecker, FlagsQueueWithoutAPendingRequest) {
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 1, 2, kR, kNL, false, 1),
  };
  expect_single(check(events), ViolationKind::kQueueForwardMismatch);
}

TEST(LintChecker, FlagsFreezesStillOwedAtEndOfTrace) {
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
  };
  expect_single(check(events, with_token0()), ViolationKind::kMissingFreeze);
}

// ---- reporting -------------------------------------------------------------

TEST(LintChecker, RenderCarriesKindIndexAndWindow) {
  const std::vector<TraceEvent> events = {
      make(EventKind::kEnterCs, 1, 0, kR, kNL, false),
      make(EventKind::kEnterCs, 2, 0, kW, kNL, true),
  };
  const LintReport report = check(events);
  const std::string out = report.render();
  EXPECT_NE(out.find("VIOLATION incompatible-holds at event #1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("  | #0"), std::string::npos)
      << "context window rendered: " << out;
  EXPECT_NE(out.find("1 violation(s) in 2 events"), std::string::npos);
}

TEST(LintChecker, CleanReportSummarizesEventCount) {
  const LintReport report = check(std::vector<TraceEvent>{});
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.render().find("0 events conform"), std::string::npos);
}

TEST(LintChecker, FreezingDisabledWaivesFairnessChecks) {
  // Mirrors HierConfig::freezing = false: Table 1(d) and FIFO obligations
  // are waived; token authority still applies.
  LintOptions options = with_token0();
  options.freezing = false;
  const std::vector<TraceEvent> events = {
      make(EventKind::kQueue, 0, 1, kW, kR, true, 1),
      make(EventKind::kGrant, 0, 2, kR, kR, true, 2),
      make(EventKind::kTokenTransfer, 0, 1, kW, kNL, true, 1),
  };
  const LintReport report = check(events, options);
  EXPECT_TRUE(report.ok()) << report.render();
}

}  // namespace
}  // namespace hlock::lint
