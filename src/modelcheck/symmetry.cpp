#include "modelcheck/symmetry.hpp"

#include <algorithm>
#include <map>

namespace hlock::modelcheck {

SymmetryGroup SymmetryGroup::from_classes(
    const std::vector<std::size_t>& classes, std::size_t max_perms) {
  SymmetryGroup group;
  const std::size_t n = classes.size();
  std::vector<std::uint32_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    identity[i] = static_cast<std::uint32_t>(i);
  }

  // Interchangeable member lists. Node 0 is NOT special: the initial
  // asymmetry (token placement, parent links) is part of the state being
  // relabeled, so any script-preserving permutation maps reachable states
  // to behaviorally equivalent reachable states.
  std::map<std::size_t, std::vector<std::uint32_t>> members;
  for (std::size_t i = 0; i < n; ++i) {
    members[classes[i]].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::vector<std::uint32_t>> orbits;
  for (auto& [label, nodes] : members) {
    if (nodes.size() > 1) orbits.push_back(std::move(nodes));
  }
  if (orbits.empty()) {
    group.perms_.push_back(std::move(identity));
    return group;
  }

  // Cartesian product of per-orbit permutations, odometer style: perm[k]
  // holds the current arrangement of orbits[k]; advance the last orbit via
  // next_permutation, carrying into earlier orbits on wrap-around.
  std::vector<std::vector<std::uint32_t>> arrangement = orbits;
  while (true) {
    std::vector<std::uint32_t> perm = identity;
    for (std::size_t k = 0; k < orbits.size(); ++k) {
      for (std::size_t j = 0; j < orbits[k].size(); ++j) {
        perm[orbits[k][j]] = arrangement[k][j];
      }
    }
    group.perms_.push_back(std::move(perm));
    if (group.perms_.size() > max_perms) {
      // Too large to enumerate: fall back to identity-only (sound, see
      // header) rather than a non-deterministic partial prefix.
      group.perms_.clear();
      group.perms_.push_back(identity);
      group.truncated_ = true;
      return group;
    }
    std::size_t k = orbits.size();
    while (k > 0) {
      --k;
      if (std::next_permutation(arrangement[k].begin(),
                                arrangement[k].end())) {
        break;
      }
      // Wrapped back to sorted order; carry into the previous orbit. A
      // wrap of orbit 0 means the whole product has been enumerated (the
      // identity was emitted first, with every orbit in sorted order).
      if (k == 0) return group;
    }
  }
}

proto::Message remap_message(const proto::Message& m,
                             const std::vector<std::uint32_t>& map) {
  const auto remap = [&map](proto::NodeId id) {
    if (id.is_none() || id.value() >= map.size()) return id;
    return proto::NodeId{map[id.value()]};
  };
  proto::Message out = m;
  out.from = remap(m.from);
  out.to = remap(m.to);
  out.request.origin = remap(m.request.origin);
  if (auto* request = std::get_if<proto::HierRequest>(&out.payload)) {
    request->requester = remap(request->requester);
  } else if (auto* token = std::get_if<proto::HierToken>(&out.payload)) {
    for (proto::QueuedRequest& entry : token->queue) {
      entry.requester = remap(entry.requester);
    }
  } else if (auto* naimi = std::get_if<proto::NaimiRequest>(&out.payload)) {
    naimi->requester = remap(naimi->requester);
  }
  return out;
}

}  // namespace hlock::modelcheck
