#include "transport/tcp_socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "proto/codec.hpp"
#include "util/check.hpp"

namespace hlock::transport {

namespace {

bool write_all(int fd, const std::byte* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::byte* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one raw frame body into `body` (reused across calls); false on
/// clean close, error, or an oversized/empty frame.
bool read_frame_body(int fd, std::vector<std::byte>& body) {
  std::byte header[4];
  if (!read_all(fd, header, sizeof header)) return false;
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (size == 0 || size > kMaxFrameBytes) return false;
  body.resize(size);
  return read_all(fd, body.data(), size);
}

}  // namespace

int listen_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HLOCK_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw UsageError("tcp: bind/listen on loopback failed: " + reason);
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  HLOCK_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "getsockname() failed");
  return ntohs(bound.sin_port);
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HLOCK_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw UsageError("tcp: connect to loopback port " +
                     std::to_string(port) + " failed: " + reason);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool write_frame_body(int fd, const std::vector<std::byte>& body) {
  if (body.empty() || body.size() > kMaxFrameBytes) return false;
  std::byte header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] =
        static_cast<std::byte>((body.size() >> (8 * i)) & 0xFF);
  }
  return write_all(fd, header, sizeof header) &&
         write_all(fd, body.data(), body.size());
}

bool write_frame(int fd, const proto::Message& message) {
  const std::vector<std::byte> body = proto::encode(message);
  return write_frame_body(fd, body);
}

std::optional<proto::Message> read_frame(int fd) {
  std::vector<std::byte> body;
  if (!read_frame_body(fd, body)) return std::nullopt;
  return proto::decode(body);
}

std::optional<std::vector<proto::Message>> read_frame_messages(int fd) {
  thread_local std::vector<std::byte> body;
  if (!read_frame_body(fd, body)) return std::nullopt;
  if (proto::is_batch_frame(body)) return proto::decode_batch(body);
  std::optional<proto::Message> single = proto::decode(body);
  if (!single) return std::nullopt;
  std::vector<proto::Message> out;
  out.push_back(std::move(*single));
  return out;
}

}  // namespace hlock::transport
