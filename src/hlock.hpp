// Umbrella header: the public face of hlock.
//
// Pulls in everything an application needs to use the hierarchical
// multi-mode locking protocol — the threaded runtime with its guards, the
// simulation harness, the workload/benchmark layer and the diagnostics.
// Individual components remain directly includable for faster builds;
// this header is for exploratory and application code.
//
//   #include "hlock.hpp"
//
//   hlock::runtime::ThreadClusterOptions options;
//   options.node_count = 8;
//   hlock::runtime::ThreadCluster cluster{options};
//   hlock::runtime::LockGuard guard{cluster, hlock::proto::NodeId{0},
//                                   hlock::proto::LockId{0},
//                                   hlock::proto::LockMode::kR};
#pragma once

// Wire vocabulary and protocol engines.
#include "core/hier_automaton.hpp"   // IWYU pragma: export
#include "core/hier_config.hpp"      // IWYU pragma: export
#include "core/mode_tables.hpp"      // IWYU pragma: export
#include "naimi/naimi_automaton.hpp" // IWYU pragma: export
#include "proto/codec.hpp"           // IWYU pragma: export
#include "raymond/raymond_automaton.hpp" // IWYU pragma: export
#include "proto/ids.hpp"             // IWYU pragma: export
#include "proto/lock_mode.hpp"       // IWYU pragma: export
#include "proto/message.hpp"         // IWYU pragma: export

// Runtimes and transports.
#include "runtime/engine.hpp"           // IWYU pragma: export
#include "runtime/invariants.hpp"       // IWYU pragma: export
#include "runtime/lock_guard.hpp"       // IWYU pragma: export
#include "runtime/multi_guard.hpp"      // IWYU pragma: export
#include "runtime/sim_cluster.hpp"      // IWYU pragma: export
#include "runtime/thread_cluster.hpp"   // IWYU pragma: export
#include "transport/inproc_transport.hpp" // IWYU pragma: export
#include "transport/tcp_node.hpp"       // IWYU pragma: export
#include "transport/tcp_transport.hpp"  // IWYU pragma: export

// Simulation, workload, analysis and diagnostics.
#include "analysis/response_model.hpp" // IWYU pragma: export
#include "sim/network_model.hpp"       // IWYU pragma: export
#include "sim/simulator.hpp"           // IWYU pragma: export
#include "stats/histogram.hpp"         // IWYU pragma: export
#include "stats/metrics.hpp"           // IWYU pragma: export
#include "stats/summary.hpp"           // IWYU pragma: export
#include "stats/table.hpp"             // IWYU pragma: export
#include "trace/recorder.hpp"          // IWYU pragma: export
#include "workload/mode_mix.hpp"       // IWYU pragma: export
#include "workload/op_plan.hpp"        // IWYU pragma: export
#include "workload/sim_driver.hpp"     // IWYU pragma: export
