// The paper's rule tables, re-derived from first principles.
//
// This module is the conformance linter's independent source of truth for
// Tables 1(a)-(d) of the paper. It deliberately does NOT reuse
// core/mode_tables.hpp: the core encodes the tables as literal constexpr
// data plus closed forms tuned for the hot path, while this module derives
// every cell from the *semantics* of the five access modes, so that a bug
// in the core's encoding cannot silently agree with itself. Unit tests
// (tests/lint/spec_tables_test.cpp) cross-validate every cell of every
// table against both the core and the literal matrices printed in the
// paper.
//
// Derivation sketch (each function's comment carries the details):
//
//   semantics     — what a mode permits: reading/writing everything at this
//                   granularity, announcing reads/writes below it, or
//                   claiming the exclusive right to upgrade to W.
//   Table 1(a)    — two modes conflict iff one's permissions can invalidate
//                   the other's: a full write conflicts with everything, a
//                   partial write conflicts with full reads and full
//                   writes, and two upgrade claims conflict with each other.
//   strength      — Definition 1: a mode is stronger when it is compatible
//                   with fewer modes; the rank is that incompatibility
//                   count.
//   Table 1(b)    — a non-token copyset member may grant a request iff the
//                   requester's permission set is covered by its own:
//                   compatibility plus compatible-set inclusion.
//   Table 1(c)    — a pending node queues a request iff it is certain to be
//                   able to serve it after its own grant: same-mode
//                   piggybacking on self-compatible modes, or anything the
//                   node will arbitrate once the token reaches it.
//   Table 1(d)    — freeze exactly the modes that are still grantable under
//                   the owned mode but conflict with the queued one: the
//                   would-be bypass grants.
#pragma once

#include "proto/lock_mode.hpp"

namespace hlock::lint {

using proto::LockMode;
using proto::ModeSet;

/// What holding a mode permits, at the granule it is taken on. These five
/// flags are the linter's axioms; every table below is derived from them.
struct ModeSemantics {
  bool reads_all = false;     ///< may read the whole granule (R, U)
  bool writes_all = false;    ///< may write the whole granule (W)
  bool reads_some = false;    ///< announces reads on sub-granules (IR, IW)
  bool writes_some = false;   ///< announces writes on sub-granules (IW)
  bool upgrade_claim = false; ///< holds the exclusive right to become W (U)
};

/// The semantics of each mode (kNL permits nothing).
ModeSemantics semantics(LockMode m);

/// Table 1(a), derived: two modes conflict iff
///   * either may write everything (a full write invalidates any
///     concurrent access, and any concurrent access invalidates it), or
///   * one may write some sub-granule while the other reads or writes
///     everything (the partial write punches a hole in the full view;
///     two partial writers are fine — their sub-granule locks arbitrate), or
///   * both claim the upgrade right (it is exclusive by definition).
/// kNL conflicts with nothing. Symmetric by construction.
bool spec_incompatible(LockMode a, LockMode b);

inline bool spec_compatible(LockMode a, LockMode b) {
  return !spec_incompatible(a, b);
}

/// The real (non-NL) modes compatible with `m`. For kNL this is all five
/// real modes.
ModeSet spec_compatible_set(LockMode m);

/// The real modes incompatible with `m`.
ModeSet spec_incompatible_set(LockMode m);

/// Definition 1, derived: a mode is stronger the fewer modes it tolerates.
/// The rank is simply the number of real modes it is incompatible with
/// (NL=0, IR=1, R=2, U=3, IW=3, W=5). The absolute values differ from the
/// core's hand-assigned ranks but induce the same order on every pair,
/// which is all any rule consumes (asserted by tests).
int spec_strength(LockMode m);

inline bool spec_stronger(LockMode a, LockMode b) {
  return spec_strength(a) > spec_strength(b);
}

/// Table 1(b), derived: a NON-token copyset member owning `owned` may grant
/// `requested` iff the two are compatible and every mode tolerated by the
/// granter is also tolerated by the requested mode — i.e.
/// spec_compatible_set(owned) is a subset of spec_compatible_set(requested).
/// Inclusion guarantees the grant cannot enable a conflict the owned mode
/// was not already advertising to the rest of the tree; it also rules out
/// owned == kNL (its compatible set is everything). Equivalent to the
/// paper's "compatible and at least as strong" on every reachable pair.
bool spec_non_token_can_grant(LockMode owned, LockMode requested);

/// Rule 3.2, derived: the token node arbitrates all modes, so compatibility
/// with its owned aggregate is necessary and sufficient.
inline bool spec_token_can_grant(LockMode owned, LockMode requested) {
  return spec_compatible(owned, requested);
}

/// Rule 3.2 grant flavour, derived: the token stays put only when the grant
/// could equally have been made by a copyset member — compatible-set
/// inclusion again. Otherwise the requested mode exceeds the owned one and
/// the token itself must move.
bool spec_token_grant_transfers(LockMode owned, LockMode requested);

/// Table 1(c) outcome (linter-local type; mirrors the paper's Q/F marks).
enum class SpecQueueOrForward {
  kForward,
  kQueue,
};

/// Table 1(c), derived: a non-token node with pending mode `pending` queues
/// an ungrantable request for `requested` iff it is certain to be able to
/// serve it once its own request resolves:
///   * requested == pending and the mode is self-compatible — after the
///     grant the node owns `pending` and Table 1(b) lets it re-grant the
///     identical mode (piggybacking; true for IR, R, IW);
///   * the pending mode always arrives by token transfer (every mode
///     compatible with it is strictly weaker, so no copyset member can ever
///     copy-grant it; true exactly for U and W) — the node will become the
///     token and thus the arbiter for any request that cannot overtake its
///     own, i.e. the same mode or an incompatible one.
/// Everything else is forwarded toward the token.
SpecQueueOrForward spec_queue_or_forward(LockMode pending,
                                         LockMode requested);

/// Table 1(d), derived: when the token owning `owned` queues an
/// incompatible request for `queued`, it must stop granting exactly the
/// modes that are still grantable (compatible with `owned`) but would
/// conflict with `queued` once granted — those grants would overtake the
/// queued request forever (starvation). Hence
/// spec_compatible_set(owned) ∩ spec_incompatible_set(queued); empty when
/// the pair is compatible (nothing can bypass).
ModeSet spec_freeze_set(LockMode owned, LockMode queued);

}  // namespace hlock::lint
