// Cluster-wide protocol invariant checks.
//
// Used by the test suite (and available to applications for debugging):
// given a simulated cluster and the set of lock ids in use, verify the
// safety properties the protocols guarantee. Some properties hold at every
// instant (safety); the structural ones are only meaningful at quiescence
// (no messages in flight), when all views have converged.
#pragma once

#include <string>
#include <vector>

#include "proto/ids.hpp"
#include "runtime/sim_cluster.hpp"

namespace hlock::runtime {

/// Result of one invariant sweep: empty `violations` means all checks pass.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// All violations joined with newlines (empty string when ok).
  std::string to_string() const;
};

/// Safety checks that must hold at EVERY instant, messages in flight or
/// not. For the hierarchical protocol: per lock, at most one token node and
/// all concurrently held modes pairwise compatible (Rule 1); for Naimi: at
/// most one token holder and at most one node in its critical section.
InvariantReport check_safety(SimCluster& cluster,
                             const std::vector<proto::LockId>& locks);

/// Structural checks valid at quiescence (simulator drained, no pending
/// requests): parent links acyclic and rooted at the token node; copyset
/// entries mutual (child's parent is the recording node) and equal to the
/// child's actual owned mode; exactly one token per lock; no leftover
/// queued requests or pending modes.
InvariantReport check_quiescent_structure(
    SimCluster& cluster, const std::vector<proto::LockId>& locks);

}  // namespace hlock::runtime
