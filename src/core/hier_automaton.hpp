// The peer-to-peer hierarchical multi-mode locking automaton (paper §3).
//
// One HierAutomaton instance manages one node's view of one lock. All
// instances are symmetric; exactly one holds the token at any time. The
// automaton implements Rules 1-7 over the tables in mode_tables.hpp:
//
//  * Rule 2 — decide locally whether a request needs a message at all;
//  * Rule 3 — grants: copy grants by sufficiently-strong copyset members
//             and the token node, token transfer when the requested mode
//             exceeds the token's owned mode;
//  * Rule 4 — queue-or-forward for ungrantable requests (local queues at
//             nodes with pending requests, a FIFO queue at the token);
//  * Rule 5 — releases: local queue service at the token, owned-mode
//             weakening notifications along the copyset tree;
//  * Rule 6 — mode freezing for FIFO fairness / starvation avoidance;
//  * Rule 7 — atomic U -> W upgrade at the token.
//
// The class is a pure state machine: every entry point returns the Effects
// (messages + local grant events) the runtime must apply. It performs no
// I/O, holds no clock and is single-threaded by construction; the runtime
// serializes calls per node.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "core/effects.hpp"
#include "core/hier_config.hpp"
#include "core/mode_tables.hpp"
#include "proto/ids.hpp"
#include "proto/message.hpp"

namespace hlock::core {

using proto::LockId;
using proto::NodeId;

/// One copyset entry: a child node, the strongest mode it owns (as last
/// reported), the epoch of the grant that created/refreshed the
/// relationship (releases carrying an older epoch are stale and dropped),
/// and the freeze notifications already sent to it (to avoid redundant
/// FREEZE messages).
struct CopysetEntry {
  NodeId node;
  LockMode mode = LockMode::kNL;
  std::uint32_t epoch = 0;
  ModeSet freeze_sent;
};

/// Per-(node, lock) protocol state machine. See file comment.
class HierAutomaton {
 public:
  /// Constructs the automaton for `self` on `lock`. Exactly one node in the
  /// system must be created with `initially_token == true`; every other
  /// node's `initial_parent` chain must (transitively) reach it.
  /// `initial_epoch` is the recovery epoch the automaton starts in: 0 for a
  /// pristine cluster, the current campaign epoch when a lock is first
  /// touched after a crash recovery (runtime::HierEngine::set_default_origin).
  HierAutomaton(NodeId self, LockId lock, bool initially_token,
                NodeId initial_parent, HierConfig config = {},
                std::uint32_t initial_epoch = 0);

  // ---- Application API ----

  /// Requests the lock in `mode` (Rule 2). Precondition: the node neither
  /// holds the lock nor has a request outstanding. If the effects report
  /// entered_cs the node is inside the critical section immediately;
  /// otherwise a later step will report it.
  ///
  /// `priority` orders waiting queues: higher priorities are served first,
  /// FIFO within a level (the prioritized extension of the paper's refs
  /// [15, 16]; all-zero priorities are the paper's pure FIFO protocol).
  /// Rule 6 freezing still applies unchanged — a high-priority request
  /// waits for current HOLDERS, it only overtakes queued waiters.
  Effects request(LockMode mode, std::uint8_t priority = 0);

  /// Releases the held lock (Rule 5). Precondition: holding, not upgrading.
  Effects release();

  /// Atomically upgrades U -> W without releasing (Rule 7). Precondition:
  /// holding kU (which implies this node is the token node). Completion is
  /// reported via Effects::upgraded, possibly in a later step.
  Effects upgrade();

  /// Delivers one protocol message addressed to this node. Messages whose
  /// envelope epoch differs from recovery_epoch() are dropped unprocessed
  /// (Effects::stale_drop) — they were minted under protocol state a crash
  /// fence has since regenerated. Runtimes buffer newer-epoch messages
  /// until the local fence arrives, so only genuinely stale ones reach
  /// this gate (docs/recovery.md).
  Effects on_message(const proto::Message& message);

  /// Applies one crash-recovery fence (docs/recovery.md): enters `epoch`,
  /// re-roots the lock's tree as a star at `new_root`, installs `holders`
  /// as the new root's copyset and `queue` as its waiting queue, and clears
  /// every pre-crash routing hint, freeze and queue elsewhere. Holds,
  /// pending requests and an in-flight upgrade survive. No-op when `epoch`
  /// is not newer than recovery_epoch() (duplicate/stale fences).
  Effects install_fence(const proto::EpochFence& fence);

  // ---- Introspection (tests, invariant checks, tracing) ----

  NodeId self() const { return self_; }
  LockId lock() const { return lock_; }
  bool is_token() const { return token_; }
  /// Recovery epoch this automaton operates in (0 before any recovery).
  std::uint32_t recovery_epoch() const { return recovery_epoch_; }
  /// Parent (granter) link: the node whose copyset this node belongs to
  /// (or last belonged to); carries releases and freeze propagation.
  /// none iff this node is the token node.
  NodeId parent() const { return parent_; }
  /// Probable-owner routing hint (Naimi path reversal): where requests are
  /// forwarded when set; falls back to parent() when none. Reversed to the
  /// requester on every forward — this is the paper's "dynamic path
  /// compression for request propagation".
  NodeId route_hint() const { return hint_; }
  /// Mode currently held (kNL outside critical sections) — Definition 2.
  LockMode held() const { return held_; }
  /// Mode of the node's own outstanding request (kNL if none); kW while a
  /// Rule 7 upgrade is in flight.
  LockMode pending() const { return pending_; }
  /// Sequence number of the outstanding request (valid while pending() is
  /// not kNL; requests never overlap, so it is the last issued seq).
  std::uint64_t pending_seq() const { return next_seq_ - 1; }
  /// Priority of the outstanding request (valid while pending() is not kNL).
  std::uint8_t pending_priority() const { return pending_priority_; }
  /// Strongest mode held/owned in the subtree rooted here — Definition 3.
  LockMode owned() const;
  /// True while a Rule 7 upgrade is waiting for children to release.
  bool upgrading() const { return upgrading_; }
  /// Children granted by this node and their reported owned modes.
  const std::vector<CopysetEntry>& copyset() const { return copyset_; }
  /// The owned mode this node's parent currently records for it (kNL when
  /// not a copyset member). Always at least as strong as owned(); it may
  /// briefly overestimate when a weakening notification raced a re-grant
  /// (the stale release is epoch-discarded; the next quiet release
  /// resynchronizes).
  LockMode reported_owned() const { return reported_owned_; }
  /// Locally queued requests in FIFO order.
  const std::deque<proto::QueuedRequest>& queue() const { return queue_; }
  /// Modes this node currently refuses to grant (Rule 6).
  ModeSet frozen() const { return frozen_; }
  /// One-line state dump: "node3 tok=1 held=R own=R pend=NL q=2 cs={...}".
  std::string describe() const;

  /// Complete, canonical serialization of the automaton state — two
  /// automatons behave identically from here on iff their fingerprints are
  /// equal. Used by the model checker for visited-state deduplication.
  std::string fingerprint() const;

  /// fingerprint() with every embedded node id (parent, routing hint,
  /// copyset entries, queue requesters) mapped through `relabel`
  /// (relabel[i] = new id for node i; ids beyond the span pass through).
  /// Copyset entries are emitted in sorted order — insertion order is
  /// behaviorally irrelevant (lookups are by id, messages go to distinct
  /// peers), so sorting makes the rendering permutation-independent. The
  /// queue's FIFO/priority order IS behavior and is preserved. Used by the
  /// model checker's symmetry canonicalization.
  std::string fingerprint(std::span<const std::uint32_t> relabel) const;

 private:
  Effects step_request(LockMode mode, std::uint8_t priority);
  /// Inserts into the local queue: after every entry with priority >= the
  /// new entry's (priority order, FIFO within a level).
  void enqueue(const proto::QueuedRequest& entry);
  void handle_request(const proto::HierRequest& request, Effects& fx);
  void handle_request_as_token(const proto::QueuedRequest& request,
                               Effects& fx);
  /// `seq` is the sequence number of this node's own pending request (from
  /// the message's RequestId when stamped); it tags the kEnterCs event.
  void handle_grant(NodeId from, const proto::HierGrant& grant,
                    std::uint64_t seq, Effects& fx);
  void handle_token(NodeId from, const proto::HierToken& token,
                    std::uint64_t seq, Effects& fx);
  void handle_release(NodeId from, const proto::HierRelease& release,
                      Effects& fx);
  void handle_freeze(const proto::HierFreeze& freeze, Effects& fx);

  /// On re-parenting under a granter that is not the current parent while
  /// still owning a mode: withdraw this subtree from the old parent's
  /// copyset (it moves under the granter).
  void detach_from_old_parent(NodeId granter, Effects& fx);

  /// Rule 3 grant paths (precondition: the grant is legal).
  void copy_grant(const proto::QueuedRequest& request, Effects& fx);
  void transfer_token(const proto::QueuedRequest& request, Effects& fx);

  /// Rule 5.1: walk the token's FIFO queue granting every non-frozen
  /// compatible entry; installs freeze sets for entries that stay.
  void service_token_queue(Effects& fx);
  /// Drain a non-token node's local queue once its pending request
  /// resolved: grant what Rule 3.1 allows, forward the rest.
  void drain_local_queue(Effects& fx);
  /// Completes a waiting Rule 7 upgrade once all children released.
  void maybe_complete_upgrade(Effects& fx);

  /// Recomputes the token's frozen set from its queue and notifies copyset
  /// children that could otherwise grant a frozen mode (Rule 6).
  void refresh_frozen(Effects& fx);
  /// Sends FREEZE to children able to grant newly frozen modes.
  void notify_frozen_children(Effects& fx);

  /// Adds or strengthens the entry for `node`, stamping `epoch`; returns
  /// the resulting entry mode.
  LockMode copyset_add(NodeId node, LockMode mode, std::uint32_t epoch);
  CopysetEntry* copyset_find(NodeId node);
  /// Weakening side of Rule 5.2: notify the parent when the owned mode it
  /// has on record (reported_owned_) overestimates the actual owned mode.
  /// Deferred while a request is pending to avoid RELEASE/GRANT crossings.
  void propagate_weakening(Effects& fx);

  /// `request` stamps the message's end-to-end RequestId (the request the
  /// message concerns); none for messages not tied to one application
  /// request (releases, freezes).
  void send(NodeId to, proto::Payload payload, Effects& fx,
            proto::RequestId request = proto::RequestId::none()) const;

  /// Builds a trace event stamped with this node's identity and current
  /// token status (capture before mutating token_ where it matters).
  trace::TraceEvent make_event(trace::EventKind kind) const;
  /// Appends `event` to fx.events iff config_.trace_events is on.
  void emit(Effects& fx, trace::TraceEvent event) const;
  /// Emits kFreeze/kUnfreeze if the frozen set changed from `before` to the
  /// current frozen_ (the event carries the full new set).
  void emit_frozen_change(Effects& fx, ModeSet before) const;
  /// Emits kLocalGrant + kEnterCs for a message-free self-grant (Rule 2,
  /// the token's Rule 3.2 self-grant, or token-queue self-service).
  void emit_self_grant(Effects& fx, LockMode mode, LockMode owned_before,
                       std::uint64_t seq) const;

  const NodeId self_;
  const LockId lock_;
  const HierConfig config_;

  /// Request-routing target: hint_ when set, else parent_.
  NodeId route() const { return hint_.is_none() ? parent_ : hint_; }

  /// The seq of this node's own pending request: the incoming grant/token
  /// message's RequestId when stamped, else the most recently issued seq
  /// (valid because request() forbids overlap, so the outstanding request
  /// is always the last one issued).
  std::uint64_t own_pending_seq(proto::RequestId request) const {
    return request.is_none() ? next_seq_ - 1 : request.seq;
  }

  bool token_ = false;
  NodeId parent_;           // granter link; none iff token_
  NodeId hint_;             // probable-owner routing hint (may be none)
  LockMode held_ = LockMode::kNL;
  LockMode pending_ = LockMode::kNL;
  /// Priority of the outstanding request; crash-recovery reports carry it
  /// so the rebuilt root queue preserves priority order (docs/recovery.md).
  std::uint8_t pending_priority_ = 0;
  bool upgrading_ = false;
  /// Sequence numbers start at 1: seq 0 is the "unset" value in trace
  /// events and RequestIds, so every real request must have a nonzero seq.
  std::uint64_t next_seq_ = 1;
  std::vector<CopysetEntry> copyset_;
  std::deque<proto::QueuedRequest> queue_;
  ModeSet frozen_;
  /// Mirror of the parent's copyset entry for this node (see
  /// reported_owned()); kNL while not a copyset member or when token.
  LockMode reported_owned_ = LockMode::kNL;
  /// Epoch of the last grant received from the current parent; stamps all
  /// RELEASE messages (see HierGrant::epoch).
  std::uint32_t parent_epoch_ = 0;
  /// Times our own pending request bounced back to us (stale hint loops);
  /// reset on every grant, bounded as a livelock guard.
  std::uint32_t reissue_count_ = 0;
  /// Source of grant epochs handed to children; 0 is reserved for entries
  /// created by token transfer.
  std::uint32_t epoch_counter_ = 0;
  /// Recovery epoch (docs/recovery.md): stamped onto every outgoing
  /// message; mismatched incoming messages are dropped. Advanced only by
  /// install_fence().
  std::uint32_t recovery_epoch_ = 0;
};

}  // namespace hlock::core
