// Ablation study — contribution of each protocol mechanism.
//
// The paper attributes its message savings to local queueing, grants by
// copyset children and dynamic path compression, and its fairness to mode
// freezing (§3.3, §4.1). This benchmark re-runs the Fig. 9 setup (ratio 10)
// with each mechanism disabled in turn and reports the message overhead,
// the mean latency and the mean latency of whole-table W operations (the
// writer-starvation indicator for the freezing ablation).
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "core/hier_config.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::ExperimentConfig;
using bench::ExperimentResult;

namespace {

struct Variant {
  const char* name;
  core::HierConfig config;
};

}  // namespace

int main() {
  const auto preset = sim::ibm_sp_preset();

  core::HierConfig full;
  core::HierConfig no_queueing = full;
  no_queueing.local_queueing = false;
  no_queueing.path_compression = false;  // its queueing would mask the flag
  core::HierConfig no_child_grants = full;
  no_child_grants.child_grants = false;
  core::HierConfig no_compression = full;
  no_compression.path_compression = false;
  core::HierConfig no_freezing = full;
  no_freezing.freezing = false;
  core::HierConfig bare = full;
  bare.local_queueing = false;
  bare.child_grants = false;
  bare.path_compression = false;

  const Variant variants[] = {
      {"full protocol", full},
      {"no local queueing", no_queueing},
      {"no child grants", no_child_grants},
      {"no path compression", no_compression},
      {"no freezing", no_freezing},
      {"bare (queueing+grants+compression off)", bare},
  };

  std::printf("Ablation — Fig. 9 setup (ratio 10, %s testbed), 60 nodes\n",
              preset.name.c_str());
  std::printf("msgs/acq = messages per lock request; W-latency = mean "
              "latency of whole-table write ops\n\n");

  stats::TextTable table;
  table.set_header({"configuration", "msgs/acq", "mean latency (ms)",
                    "W latency (ms)", "max latency (ms)"});

  for (const Variant& variant : variants) {
    ExperimentConfig config;
    config.nodes = 60;
    config.net_latency = preset.message_latency;
    config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
    config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
    config.ops_per_node = 40;
    config.seed = 37;
    config.hier_config = variant.config;
    const ExperimentResult result = bench::run_averaged(config, 3);
    table.add_row({variant.name, stats::TextTable::num(result.msgs_per_acq),
                   stats::TextTable::num(result.mean_latency_ms, 2),
                   stats::TextTable::num(result.w_latency_ms, 2),
                   stats::TextTable::num(result.max_latency_ms, 2)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
