#include "sched/harness.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hlock::sched {

const char* seed_verdict_name(SeedVerdict verdict) {
  switch (verdict) {
    case SeedVerdict::kOk: return "ok";
    case SeedVerdict::kDeadlock: return "deadlock";
    case SeedVerdict::kBudgetExceeded: return "budget-exceeded";
    case SeedVerdict::kBodyFailure: return "body-failure";
    case SeedVerdict::kCrash: return "crash";
  }
  return "?";
}

std::optional<std::uint64_t> parse_fingerprint(const std::string& output) {
  static constexpr char kKey[] = "fingerprint: ";
  const std::size_t at = output.rfind(kKey);
  if (at == std::string::npos) return std::nullopt;
  const char* digits = output.c_str() + at + sizeof(kKey) - 1;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(digits, &end, 10);
  if (end == digits || errno != 0) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

SeedResult run_seed(const ExplorerOptions& options,
                    const std::function<void()>& body,
                    const std::function<bool()>& failed) {
  SeedResult result;
  int fds[2];
  if (pipe(fds) != 0) {
    result.output = std::string("pipe() failed: ") + std::strerror(errno);
    return result;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    result.output = std::string("fork() failed: ") + std::strerror(errno);
    return result;
  }
  if (pid == 0) {
    // Child: funnel everything the schedule prints (deadlock reports,
    // lockdep inversions, the body's own output) into the pipe.
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    dup2(fds[1], STDERR_FILENO);
    close(fds[1]);
    {
      Explorer explorer(options);
      explorer.run(body);
      std::fprintf(stdout,
                   "sched: schedule complete seed=%llu steps=%llu "
                   "fingerprint: %llu\n",
                   static_cast<unsigned long long>(options.seed),
                   static_cast<unsigned long long>(explorer.steps()),
                   static_cast<unsigned long long>(
                       explorer.schedule_fingerprint()));
    }
    std::fflush(stdout);
    std::fflush(stderr);
    // _Exit: the child must not run the parent's atexit chain / test
    // framework teardown it inherited.
    std::_Exit(failed && failed() ? 1 : 0);
  }
  // Parent: drain the pipe (before waitpid — a chatty child would fill the
  // pipe and block otherwise), then reap.
  close(fds[1]);
  char buffer[4096];
  for (;;) {
    const ssize_t n = read(fds[0], buffer, sizeof(buffer));
    if (n > 0) {
      result.output.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  close(fds[0]);
  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.status = WEXITSTATUS(status);
    switch (result.status) {
      case 0:
        result.verdict = SeedVerdict::kOk;
        break;
      case kSchedDeadlockExit:
        result.verdict = SeedVerdict::kDeadlock;
        break;
      case kSchedBudgetExit:
        result.verdict = SeedVerdict::kBudgetExceeded;
        break;
      default:
        result.verdict = SeedVerdict::kBodyFailure;
        break;
    }
  } else if (WIFSIGNALED(status)) {
    result.status = -WTERMSIG(status);
    result.verdict = SeedVerdict::kCrash;
  }
  result.fingerprint = parse_fingerprint(result.output);
  return result;
}

}  // namespace hlock::sched
