// Order statistics over a sample set.
//
// Experiment harnesses collect every per-request sample (populations are at
// most a few hundred thousand), so summaries are exact rather than
// approximated by sketches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hlock::stats {

/// Exact summary statistics of a sample population.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double stddev = 0.0;
};

/// Computes the summary of `samples` (copied internally for sorting; the
/// argument order is preserved). An empty input yields an all-zero summary.
Summary summarize(const std::vector<double>& samples);

/// Exact q-quantile (0 <= q <= 1) of pre-sorted samples, with linear
/// interpolation between adjacent order statistics.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// "n=100 mean=1.23 p50=1.10 p90=2.00 p95=2.80 p99=3.50 p999=3.95
/// max=4.00" — for logs.
std::string to_string(const Summary& s);

}  // namespace hlock::stats
