// hlock_metrics_check — Prometheus exposition validator (the CI checker).
//
// Validates metrics produced by hlock_sim / the HttpExporter: every family
// has a TYPE line, no duplicate series, histogram buckets cumulative and
// consistent, counters non-negative — and, across two scrapes of the same
// process, counters monotone.
//
//   hlock_metrics_check metrics.prom                    # one file
//   hlock_metrics_check earlier.prom later.prom         # + monotone check
//   hlock_metrics_check --scrape 9100 --rescrape-ms 300 # live, two scrapes
//   hlock_metrics_check m.prom --expect-nonzero hlock_stalled_requests_total
//
// --scrape polls `GET /metrics` on 127.0.0.1:<port>, retrying while the
// target is still starting (--retries / --retry-delay-ms); --rescrape-ms
// takes a second scrape after the delay and checks counter monotonicity
// between the two. --expect-nonzero takes a comma-separated list of series
// prefixes whose summed value must be positive in the final exposition —
// how CI asserts "the watchdog demonstrably fired". Exit 0 = clean,
// 1 = violations, 2 = usage/connection errors.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/text_parse.hpp"
#include "transport/tcp_socket.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;

namespace {

/// One `GET /metrics` exchange against 127.0.0.1:`port`; returns the
/// response body. Throws UsageError on connection or protocol failure.
std::string scrape_once(std::uint16_t port) {
  const int fd = transport::connect_loopback(port);
  const std::string request =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(fd);
      throw UsageError("scrape: write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      ::close(fd);
      throw UsageError("scrape: read failed");
    }
    if (n == 0) break;  // Connection: close — EOF ends the response
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t status_end = response.find("\r\n");
  if (status_end == std::string::npos ||
      response.compare(0, 9, "HTTP/1.1 ") != 0) {
    throw UsageError("scrape: malformed HTTP response");
  }
  const std::string status = response.substr(9, 3);
  if (status != "200") {
    throw UsageError("scrape: HTTP status " + status);
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    throw UsageError("scrape: response has no body");
  }
  return response.substr(body_at + 4);
}

/// Scrapes with retries (the target may still be binding its socket).
std::string scrape(std::uint16_t port, int retries, int retry_delay_ms) {
  for (int attempt = 0;; ++attempt) {
    try {
      return scrape_once(port);
    } catch (const UsageError& error) {
      if (attempt >= retries) throw;
      std::fprintf(stderr, "scrape attempt %d failed (%s), retrying\n",
                   attempt + 1, error.what());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_delay_ms));
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw UsageError("cannot read: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Splits a comma-separated list, dropping empty items.
std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in{text};
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Runs check_exposition and prints violations. Returns the count.
std::size_t report(const std::string& label,
                   const telemetry::ParsedExposition& parsed) {
  const std::vector<std::string> violations =
      telemetry::check_exposition(parsed);
  for (const std::string& violation : violations) {
    std::printf("FAIL %s: %s\n", label.c_str(), violation.c_str());
  }
  std::printf("%s: %zu series, %zu type lines, %zu violation(s)\n",
              label.c_str(), parsed.series.size(), parsed.types.size(),
              violations.size());
  return violations.size();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_metrics_check",
                "validate Prometheus text exposition from files or a live "
                "/metrics endpoint"};
  cli.allow_positionals("METRICS-FILE [LATER-METRICS-FILE]");
  cli.add_option("scrape", "0",
                 "scrape http://127.0.0.1:PORT/metrics instead of reading "
                 "files");
  cli.add_option("retries", "20", "scrape: connection attempts before giving "
                                  "up");
  cli.add_option("retry-delay-ms", "250", "scrape: delay between attempts");
  cli.add_option("rescrape-ms", "0",
                 "scrape: take a second scrape after this delay and check "
                 "counter monotonicity (0 = single scrape)");
  cli.add_option("out", "", "write the last exposition read to this file");
  cli.add_option("expect-nonzero", "",
                 "comma-separated series prefixes whose summed value must "
                 "be > 0 in the final exposition");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    std::vector<std::pair<std::string, std::string>> expositions;
    if (cli.was_set("scrape")) {
      const auto port =
          static_cast<std::uint16_t>(cli.get_int("scrape", 1, 65535));
      const int retries = static_cast<int>(cli.get_int("retries", 0, 1000));
      const int delay =
          static_cast<int>(cli.get_int("retry-delay-ms", 1, 60000));
      expositions.emplace_back("scrape", scrape(port, retries, delay));
      const std::int64_t rescrape_ms = cli.get_int("rescrape-ms", 0, 600000);
      if (rescrape_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rescrape_ms));
        // No retries: the endpoint answered moments ago.
        expositions.emplace_back("rescrape", scrape(port, 0, delay));
      }
    } else {
      if (cli.positional().empty() || cli.positional().size() > 2) {
        throw UsageError("expected one or two metrics files (or --scrape)");
      }
      for (const std::string& path : cli.positional()) {
        expositions.emplace_back(path, read_file(path));
      }
    }

    const std::string out = cli.get_string("out");
    if (!out.empty()) {
      std::ofstream sink{out, std::ios::binary | std::ios::trunc};
      if (!sink) throw UsageError("cannot write: " + out);
      sink << expositions.back().second;
    }

    std::size_t violations = 0;
    std::vector<telemetry::ParsedExposition> parsed;
    for (const auto& [label, text] : expositions) {
      parsed.push_back(telemetry::parse_exposition(text));
      violations += report(label, parsed.back());
    }
    if (parsed.size() == 2) {
      const std::vector<std::string> decreases =
          telemetry::check_monotone(parsed[0], parsed[1]);
      for (const std::string& decrease : decreases) {
        std::printf("FAIL monotone: %s\n", decrease.c_str());
      }
      std::printf("monotone: %zu violation(s)\n", decreases.size());
      violations += decreases.size();
    }
    for (const std::string& prefix :
         split_csv(cli.get_string("expect-nonzero"))) {
      const double sum = parsed.back().prefixed_sum(prefix);
      if (sum <= 0.0) {
        std::printf("FAIL expect-nonzero: %s sums to %g\n", prefix.c_str(),
                    sum);
        ++violations;
      } else {
        std::printf("expect-nonzero: %s = %g\n", prefix.c_str(), sum);
      }
    }
    return violations == 0 ? 0 : 1;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
