#include "telemetry/exports.hpp"

namespace hlock::telemetry {

void export_transport_counters(Registry& registry,
                               const stats::TransportCounters& counters,
                               const std::string& prefix) {
  counters.for_each([&](const char* field,
                        const std::atomic<std::uint64_t>& value) {
    registry.register_counter_fn(
        prefix + field + "_total",
        [&value] { return value.load(std::memory_order_relaxed); });
  });
}

void export_message_counter(Registry& registry,
                            const stats::MessageCounter& counter,
                            const std::string& prefix) {
  for (std::size_t i = 0; i < proto::kMessageKindCount; ++i) {
    const auto kind = static_cast<proto::MessageKind>(i);
    registry.register_counter_fn(
        labeled(prefix, {{"kind", proto::to_string(kind)}}),
        [&counter, kind] { return counter.count(kind); });
  }
}

}  // namespace hlock::telemetry
