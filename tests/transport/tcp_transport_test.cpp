// Tests of the TCP loopback transport: framing, routing, FIFO, volume,
// shutdown semantics, and the full protocol stack running over real
// sockets.
#include "transport/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>
#include <vector>

#include "runtime/thread_cluster.hpp"
#include "transport/tcp_socket.hpp"
#include "util/check.hpp"

namespace hlock::transport {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

Message make_message(std::uint32_t from, std::uint32_t to,
                     std::uint64_t seq = 0) {
  return Message{NodeId{from}, NodeId{to}, LockId{0},
                 proto::NaimiRequest{NodeId{from}, seq}};
}

TEST(TcpTransport, BindsDistinctLoopbackPorts) {
  TcpTransport transport{3};
  EXPECT_NE(transport.port_of(NodeId{0}), 0);
  EXPECT_NE(transport.port_of(NodeId{0}), transport.port_of(NodeId{1}));
  EXPECT_NE(transport.port_of(NodeId{1}), transport.port_of(NodeId{2}));
}

TEST(TcpTransport, DeliversAcrossRealSockets) {
  TcpTransport transport{2};
  transport.send(make_message(0, 1, 42));
  const auto received =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, make_message(0, 1, 42));
  EXPECT_EQ(transport.messages_sent(), 1u);
}

TEST(TcpTransport, RoundTripsEveryPayloadKind) {
  TcpTransport transport{2};
  const std::vector<Message> messages{
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierRequest{NodeId{0}, LockMode::kU, 7}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierGrant{LockMode::kR, LockMode::kR, 12}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierToken{LockMode::kW, LockMode::kIR,
                        {proto::QueuedRequest{NodeId{0}, LockMode::kR, 1}}}},
      {NodeId{0}, NodeId{1}, LockId{3}, proto::HierRelease{LockMode::kNL, 4}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierFreeze{proto::ModeSet::of({LockMode::kIR})}},
      {NodeId{0}, NodeId{1}, LockId{3}, proto::NaimiToken{}},
  };
  for (const Message& message : messages) transport.send(message);
  for (const Message& message : messages) {
    const auto received =
        transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, message);
  }
}

TEST(TcpTransport, ChannelIsFifoUnderVolume) {
  TcpTransport transport{2};
  constexpr std::uint64_t kCount = 2000;
  std::thread sender([&transport] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      transport.send(make_message(0, 1, i));
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const auto received =
        transport.recv_for(NodeId{1}, std::chrono::milliseconds(5000));
    ASSERT_TRUE(received.has_value());
    const auto* request = std::get_if<proto::NaimiRequest>(&received->payload);
    ASSERT_NE(request, nullptr);
    ASSERT_EQ(request->seq, i) << "TCP channel reordered frames";
  }
  sender.join();
}

TEST(TcpTransport, ConcurrentSendersToOneReceiver) {
  TcpTransport transport{4};
  constexpr int kPerSender = 300;
  std::vector<std::thread> senders;
  for (std::uint32_t s = 1; s < 4; ++s) {
    senders.emplace_back([&transport, s] {
      for (int i = 0; i < kPerSender; ++i) {
        transport.send(make_message(s, 0, static_cast<std::uint64_t>(i)));
      }
    });
  }
  int received = 0;
  while (received < 3 * kPerSender) {
    const auto message =
        transport.recv_for(NodeId{0}, std::chrono::milliseconds(5000));
    ASSERT_TRUE(message.has_value()) << "after " << received << " messages";
    ++received;
  }
  for (std::thread& t : senders) t.join();
}

TEST(TcpTransport, ShutdownUnblocksReceivers) {
  TcpTransport transport{2};
  std::thread receiver([&transport] {
    EXPECT_FALSE(transport.recv(NodeId{1}).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.shutdown();
  receiver.join();
}

TEST(TcpTransport, RejectsUnknownDestination) {
  TcpTransport transport{2};
  EXPECT_THROW(transport.send(make_message(0, 7)), UsageError);
}

std::uint64_t seq_of(const Message& message) {
  const auto* request = std::get_if<proto::NaimiRequest>(&message.payload);
  return request == nullptr ? ~std::uint64_t{0} : request->seq;
}

TEST(TcpTransport, SendRecoversAfterChannelSevered) {
  TcpTransport transport{2};
  transport.send(make_message(0, 1, 1));
  const auto first =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(first.has_value());

  // Kill the established connection mid-run, behind the sender's back.
  ASSERT_TRUE(transport.sever_channel(NodeId{0}, NodeId{1}));
  transport.send(make_message(0, 1, 2));

  const auto second =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(second.has_value()) << "sender did not recover the channel";
  EXPECT_EQ(seq_of(*second), 2u);
  EXPECT_EQ(transport.messages_sent(), 2u);
  const auto counters = transport.counters().snapshot();
  EXPECT_GE(counters.send_retries, 1u);
  EXPECT_GE(counters.reconnects, 1u);
  EXPECT_EQ(counters.send_failures, 0u);
}

TEST(TcpTransport, SeverNeedsAnEstablishedChannel) {
  TcpTransport transport{2};
  EXPECT_FALSE(transport.sever_channel(NodeId{0}, NodeId{1}));
}

TEST(TcpTransport, ExhaustedRetriesDropTheFrameWithoutThrowing) {
  TcpOptions options;
  options.max_send_attempts = 2;
  options.initial_backoff = std::chrono::milliseconds(1);
  TcpTransport transport{2, options};
  // Repeatedly sever so every attempt (including post-reconnect writes)
  // fails; send must give up silently, never throw.
  for (int round = 0; round < 3; ++round) {
    transport.send(make_message(0, 1, static_cast<std::uint64_t>(round)));
    transport.sever_channel(NodeId{0}, NodeId{1});
  }
  // Drain whatever made it through; the transport itself must stay usable.
  while (transport.recv_for(NodeId{1}, std::chrono::milliseconds(200))
             .has_value()) {
  }
  transport.send(make_message(0, 1, 99));
  const auto last =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(seq_of(*last), 99u);
}

TEST(TcpTransport, MisaddressedFrameIsDiscardedConnectionSurvives) {
  TcpTransport transport{2};
  // Hand-roll a connection to node 0 and misaddress the first frame.
  const int fd = connect_loopback(transport.port_of(NodeId{0}));
  ASSERT_TRUE(write_frame(fd, make_message(1, 1, 7)));  // to node 1!
  ASSERT_TRUE(write_frame(fd, make_message(1, 0, 8)));  // correct
  const auto received =
      transport.recv_for(NodeId{0}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(received.has_value())
      << "reader dropped the connection on a bad frame";
  EXPECT_EQ(seq_of(*received), 8u);
  EXPECT_EQ(transport.counters().snapshot().misaddressed_frames, 1u);
  // The misaddressed frame never surfaced anywhere.
  EXPECT_FALSE(
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(50))
          .has_value());
  ::close(fd);
}

TEST(TcpCluster, HierarchicalProtocolOverRealSockets) {
  runtime::ThreadClusterOptions options;
  options.node_count = 4;
  options.transport = runtime::TransportKind::kTcp;
  runtime::ThreadCluster cluster{options};

  long counter = 0;
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    workers.emplace_back([&cluster, &counter, i] {
      for (int k = 0; k < 20; ++k) {
        cluster.lock(NodeId{i}, LockId{0}, LockMode::kW);
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
        cluster.unlock(NodeId{i}, LockId{0});
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, 80);
  EXPECT_GT(cluster.messages_sent(), 0u);
}

TEST(TcpCluster, SharedModesAndUpgradeOverRealSockets) {
  runtime::ThreadClusterOptions options;
  options.node_count = 3;
  options.transport = runtime::TransportKind::kTcp;
  runtime::ThreadCluster cluster{options};

  // Concurrent readers over sockets.
  std::thread r1([&] {
    cluster.lock(NodeId{1}, LockId{0}, LockMode::kIR);
    cluster.unlock(NodeId{1}, LockId{0});
  });
  std::thread r2([&] {
    cluster.lock(NodeId{2}, LockId{0}, LockMode::kIR);
    cluster.unlock(NodeId{2}, LockId{0});
  });
  r1.join();
  r2.join();

  // Rule 7 upgrade across the wire.
  cluster.lock(NodeId{1}, LockId{0}, LockMode::kU);
  cluster.upgrade(NodeId{1}, LockId{0});
  cluster.unlock(NodeId{1}, LockId{0});
}

}  // namespace
}  // namespace hlock::transport
