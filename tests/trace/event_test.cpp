// Structured trace event tests: the format_event()/parse_event() pair must
// round-trip every field exactly (it is the bridge between live runs and
// offline linting via hlock_lint), and malformed lines must be rejected,
// not misparsed.
#include "trace/event.hpp"

#include <gtest/gtest.h>

namespace hlock::trace {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::ModeSet;
using proto::NodeId;

TraceEvent sample_event() {
  TraceEvent event;
  event.at = SimTime::us(1500);
  event.lamport = 31;
  event.kind = EventKind::kGrant;
  event.node = NodeId{0};
  event.peer = NodeId{2};
  event.lock = LockId{3};
  event.mode = LockMode::kR;
  event.ctx = LockMode::kU;
  event.modes = ModeSet::of({LockMode::kIR, LockMode::kR});
  event.token = true;
  event.seq = 42;
  event.priority = 7;
  event.detail = "copy grant";
  return event;
}

TEST(TraceEventFormat, RoundTripsEveryField) {
  const TraceEvent event = sample_event();
  const auto parsed = parse_event(format_event(event));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
}

TEST(TraceEventFormat, RoundTripsDefaultsAndNoneNodes) {
  TraceEvent event;  // all defaults: none peer, NL modes, no token
  const auto parsed = parse_event(format_event(event));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
  EXPECT_TRUE(parsed->peer.is_none());
}

TEST(TraceEventFormat, RoundTripsEveryKind) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    TraceEvent event = sample_event();
    event.kind = static_cast<EventKind>(i);
    const auto parsed = parse_event(format_event(event));
    ASSERT_TRUE(parsed.has_value()) << to_string(event.kind);
    EXPECT_EQ(*parsed, event) << to_string(event.kind);
    EXPECT_EQ(parse_event_kind(to_string(event.kind)), event.kind);
  }
}

TEST(TraceEventFormat, EscapesNewlinesInDetail) {
  TraceEvent event = sample_event();
  event.detail = "line one\nline \\two";
  const std::string line = format_event(event);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one event per line";
  const auto parsed = parse_event(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->detail, event.detail);
}

TEST(TraceEventFormat, RejectsMalformedLines) {
  EXPECT_FALSE(parse_event("").has_value());
  EXPECT_FALSE(parse_event("garbage").has_value());
  EXPECT_FALSE(parse_event("100 grant 0 2 0 R U 6 T 4 |detail").has_value())
      << "missing field";
  EXPECT_FALSE(
      parse_event("100 warp 0 2 0 R U 6 T 4 0 |detail").has_value())
      << "unknown kind";
  EXPECT_FALSE(
      parse_event("100 grant 0 2 0 R U 6 X 4 0 |detail").has_value())
      << "bad token flag";
  EXPECT_FALSE(
      parse_event("abc grant 0 2 0 R U 6 T 4 0 |detail").has_value())
      << "bad timestamp";
  EXPECT_FALSE(parse_event("100 grant 0 2 0 R U 6 T 4 0").has_value())
      << "no detail separator";
}

TEST(TraceEventFormat, ParsesHandWrittenLine) {
  const auto parsed = parse_event("1500 queue 4 - 1 W R 0 . 9 2 |");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, EventKind::kQueue);
  EXPECT_EQ(parsed->node, NodeId{4});
  EXPECT_TRUE(parsed->peer.is_none());
  EXPECT_EQ(parsed->lock, LockId{1});
  EXPECT_EQ(parsed->mode, LockMode::kW);
  EXPECT_EQ(parsed->ctx, LockMode::kR);
  EXPECT_FALSE(parsed->token);
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->priority, 2);
  EXPECT_EQ(parsed->lamport, 0u) << "pre-Lamport line defaults to zero";
}

TEST(TraceEventFormat, ParsesLamportField) {
  const auto parsed = parse_event("1500 queue 4 - 1 W R 0 . 9 2 87 |");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lamport, 87u);
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->priority, 2);
}

TEST(TraceEventRender, HumanFormNamesTheActors) {
  const std::string out = to_string(sample_event());
  EXPECT_NE(out.find("grant"), std::string::npos);
  EXPECT_NE(out.find("R -> node2"), std::string::npos);
  EXPECT_NE(out.find("ctx=U"), std::string::npos);
  EXPECT_NE(out.find("token"), std::string::npos);
  EXPECT_NE(out.find("seq=42"), std::string::npos);
}

}  // namespace
}  // namespace hlock::trace
