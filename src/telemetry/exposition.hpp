// Prometheus text exposition: render a registry snapshot to the text
// format scraped by `GET /metrics` and written by `--metrics-out`.
//
// Output per family: one `# TYPE family type` line, then every series of
// the family. Histograms expand the conventional way — cumulative
// `family_bucket{le="bound"}` series ending in `le="+Inf"`, plus
// `family_sum` and `family_count`. Samples arrive sorted from
// Registry::snapshot(), so families are contiguous and output is
// byte-deterministic for a given snapshot.
//
// The inverse direction (parsing and validating scraped text) lives in
// telemetry/text_parse.hpp.
#pragma once

#include <string>

#include "telemetry/registry.hpp"

namespace hlock::telemetry {

/// Renders the snapshot as Prometheus text format (version 0.0.4).
std::string render_prometheus(const Snapshot& snapshot);

}  // namespace hlock::telemetry
