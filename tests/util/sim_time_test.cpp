#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace hlock {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::us(1).count_ns(), 1'000);
  EXPECT_EQ(SimTime::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(SimTime::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::ms(15), SimTime::us(15'000));
}

TEST(SimTime, FractionalMilliseconds) {
  EXPECT_EQ(SimTime::ms_f(1.5).count_ns(), 1'500'000);
  EXPECT_EQ(SimTime::ms_f(0.0001).count_ns(), 100);
  EXPECT_EQ(SimTime::ms_f(-2.0).count_ns(), -2'000'000);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::ms(10);
  const SimTime b = SimTime::ms(4);
  EXPECT_EQ(a + b, SimTime::ms(14));
  EXPECT_EQ(a - b, SimTime::ms(6));
  EXPECT_EQ(b * 3, SimTime::ms(12));
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::ms(14));
  c -= SimTime::ms(14);
  EXPECT_EQ(c, SimTime{});
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::us(999), SimTime::ms(1));
  EXPECT_GT(SimTime::sec(1), SimTime::ms(999));
  EXPECT_LE(SimTime::ms(1), SimTime::ms(1));
  EXPECT_LT(SimTime::ms(1), SimTime::max());
}

TEST(SimTime, ReportingConversions) {
  EXPECT_DOUBLE_EQ(SimTime::ms(15).to_ms(), 15.0);
  EXPECT_DOUBLE_EQ(SimTime::us(1500).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::sec(2).to_sec(), 2.0);
}

TEST(SimTime, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(to_string(SimTime::ns(5)), "5 ns");
  EXPECT_EQ(to_string(SimTime::us(2)), "2.000 us");
  EXPECT_EQ(to_string(SimTime::ms(15)), "15.000 ms");
  EXPECT_EQ(to_string(SimTime::sec(3)), "3.000 s");
  EXPECT_EQ(to_string(SimTime::ms_f(1.5)), "1.500 ms");
}

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.count_ns(), 0);
  EXPECT_EQ(SimTime{}, SimTime::ns(0));
}

}  // namespace
}  // namespace hlock
