// Error-handling primitives shared by all hlock modules.
//
// The protocol automatons are specified by a small set of rules; a state that
// violates them indicates a bug in either the implementation or the caller's
// usage. We fail loudly via exceptions that carry the failing expression and
// source location, so both tests and long-running simulations surface the
// first violation instead of silently corrupting lock state.
#pragma once

#include <stdexcept>
#include <string>

namespace hlock {

/// Raised when an internal protocol invariant is violated (a bug in hlock).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Raised when a caller uses the API outside its contract (e.g. releasing a
/// lock that is not held, or upgrading from a mode other than U).
class UsageError : public std::invalid_argument {
 public:
  explicit UsageError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
[[noreturn]] void throw_usage(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace hlock

/// Asserts an internal invariant; throws hlock::InvariantError on failure.
/// Enabled in all build types: protocol state corruption must never pass
/// silently, and the cost is negligible next to message handling.
#define HLOCK_INVARIANT(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hlock::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                      \
  } while (false)

/// Validates a caller-supplied precondition; throws hlock::UsageError.
#define HLOCK_REQUIRE(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hlock::detail::throw_usage(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)
