// Failure-injection (chaos) tests: the protocol assumes reliable FIFO
// transport, so injected message loss must never corrupt safety — it must
// instead wedge the run in a way the harness DETECTS. These tests verify
// the detectors, which every other test relies on for liveness checking.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lint/checker.hpp"
#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "runtime/thread_cluster.hpp"
#include "util/check.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::workload {
namespace {

using proto::LockId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

SimClusterOptions lossy_options(double loss, std::uint64_t seed) {
  SimClusterOptions options;
  options.node_count = 8;
  options.protocol = Protocol::kHierarchical;
  options.message_latency = DurationDist::uniform(SimTime::ms(1), 0.5);
  options.seed = seed;
  options.message_loss_probability = loss;
  return options;
}

WorkloadSpec chaos_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.variant = AppVariant::kHierarchical;
  spec.node_count = 8;
  spec.ops_per_node = 40;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(4), 0.5);
  spec.seed = seed;
  return spec;
}

TEST(Chaos, MessageLossIsDetectedNotSilent) {
  // With 10% loss a run of this size loses some protocol message; the
  // driver must end with a detection (deadlock/lost request), never a
  // silent "pass" with fewer completed operations.
  int detections = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimCluster cluster{lossy_options(0.10, seed)};
    SimWorkloadDriver driver{cluster, chaos_spec(seed)};
    try {
      driver.run();
      // A run can survive if every dropped message happened to be... none:
      // then all ops completed. Anything else must have thrown.
      EXPECT_EQ(driver.stats().ops, 8u * 40u)
          << "run 'completed' with missing operations";
    } catch (const InvariantError&) {
      ++detections;
    }
  }
  EXPECT_GT(detections, 0) << "10% loss never tripped the detectors";
}

TEST(Chaos, SafetyHoldsEvenUnderLoss) {
  // Loss may wedge progress but must never produce incompatible holders:
  // a lost GRANT/TOKEN means nobody holds, never two holders.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimCluster cluster{lossy_options(0.15, seed)};
    SimWorkloadDriver driver{cluster, chaos_spec(seed)};
    const auto locks = all_locks(6);
    driver.set_periodic_check(256, [&] {
      const auto report = runtime::check_safety(cluster, locks);
      ASSERT_TRUE(report.ok()) << report.to_string();
    });
    try {
      driver.run();
    } catch (const InvariantError&) {
      // Expected: progress detection fired. Safety was asserted throughout.
    }
  }
}

TEST(Chaos, ZeroLossIsTheDefaultAndLossless) {
  SimClusterOptions options = lossy_options(0.0, 3);
  EXPECT_EQ(SimClusterOptions{}.message_loss_probability, 0.0);
  SimCluster cluster{options};
  SimWorkloadDriver driver{cluster, chaos_spec(3)};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 8u * 40u);
}

TEST(Chaos, InvalidLossProbabilityRejected) {
  EXPECT_THROW(SimCluster{lossy_options(-0.1, 1)}, UsageError);
  EXPECT_THROW(SimCluster{lossy_options(1.5, 1)}, UsageError);
}

// ---------------------------------------------------------------------------
// Real-thread chaos: the self-healing FaultyTransport injects wire faults
// under a live ThreadCluster. Unlike the simulated loss above — whose point
// is that UNMASKED loss must be detected — these faults are masked by the
// transport's reliability sublayer, so the protocol must still reach mutual
// exclusion AND make progress while every fault class fires.

constexpr std::size_t kChaosNodes = 4;
constexpr int kChaosOps = 15;

/// Runs the exclusive-counter workload under `faults` and asserts mutual
/// exclusion (no lost increments) and full progress (all ops completed).
/// Returns the fault counters for per-class assertions.
stats::TransportCounterSnapshot run_chaos_cluster(
    const transport::FaultPlan& faults) {
  runtime::ThreadClusterOptions options;
  options.node_count = kChaosNodes;
  options.protocol = Protocol::kHierarchical;
  options.seed = faults.seed;
  options.faults = faults;
  runtime::ThreadCluster cluster{options};

  long counter = 0;  // deliberately unprotected: the lock is the protection
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kChaosNodes; ++i) {
    workers.emplace_back([&cluster, &counter, i] {
      for (int k = 0; k < kChaosOps; ++k) {
        cluster.lock(NodeId{i}, LockId{0}, proto::LockMode::kW);
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
        cluster.unlock(NodeId{i}, LockId{0});
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter, static_cast<long>(kChaosNodes) * kChaosOps)
      << "mutual exclusion or progress lost under faults";
  EXPECT_EQ(cluster.receiver_errors(), 0u);
  const stats::TransportCounters* counters = cluster.fault_counters();
  EXPECT_NE(counters, nullptr);
  return counters->snapshot();
}

TEST(ThreadChaos, SurvivesWireDrops) {
  transport::FaultPlan plan;
  plan.seed = 21;
  plan.drop_probability = 0.15;
  plan.retransmit_delay = SimTime::ms(2);
  const auto counters = run_chaos_cluster(plan);
  EXPECT_GT(counters.drops, 0u) << "fault never fired; test proves nothing";
  EXPECT_EQ(counters.retransmits, counters.drops);
}

TEST(ThreadChaos, SurvivesDuplication) {
  transport::FaultPlan plan;
  plan.seed = 22;
  plan.duplicate_probability = 0.25;
  const auto counters = run_chaos_cluster(plan);
  EXPECT_GT(counters.duplicates, 0u);
  EXPECT_LE(counters.duplicates_discarded, counters.duplicates);
}

TEST(ThreadChaos, SurvivesReordering) {
  transport::FaultPlan plan;
  plan.seed = 23;
  plan.reorder_probability = 0.25;
  plan.retransmit_delay = SimTime::ms(2);
  const auto counters = run_chaos_cluster(plan);
  EXPECT_GT(counters.reorders, 0u);
}

TEST(ThreadChaos, SurvivesPartitionThatHeals) {
  transport::FaultPlan plan;
  plan.seed = 24;
  // Cut the root's half away from the rest; heal while the workload runs.
  plan.partitions.push_back(
      {{NodeId{0}, NodeId{1}}, SimTime::ms(100)});
  const auto counters = run_chaos_cluster(plan);
  EXPECT_GT(counters.partition_drops, 0u)
      << "no message ever crossed the partition";
}

TEST(ThreadChaos, SurvivesEveryFaultClassAtOnce) {
  transport::FaultPlan plan;
  plan.seed = 25;
  plan.drop_probability = 0.08;
  plan.delay_probability = 0.1;
  plan.delay = DurationDist::uniform(SimTime::ms(1), 0.5);
  plan.duplicate_probability = 0.1;
  plan.reorder_probability = 0.1;
  plan.retransmit_delay = SimTime::ms(1);
  plan.partitions.push_back({{NodeId{3}}, SimTime::ms(60)});
  const auto counters = run_chaos_cluster(plan);
  EXPECT_GT(counters.faults_injected(), 0u);
}

TEST(ThreadChaos, MaskedFaultsLintCleanAgainstTheSpec) {
  // The reliability sublayer masks every injected fault before the
  // automatons see the messages, so the recorded protocol events of a
  // chaos run must still conform to Tables 1(a)-(d) exactly.
  runtime::ThreadClusterOptions options;
  options.node_count = kChaosNodes;
  options.protocol = Protocol::kHierarchical;
  options.hier_config.trace_events = true;
  options.seed = 26;
  options.faults.seed = 26;
  options.faults.delay_probability = 0.25;
  options.faults.delay = DurationDist::uniform(SimTime::us(300), 0.5);
  options.faults.duplicate_probability = 0.15;

  lint::LintOptions lint_options;
  lint_options.initial_token = options.initial_root;
  lint::Checker checker{lint_options};
  {
    runtime::ThreadCluster cluster{options};
    cluster.set_event_sink(
        [&checker](const trace::TraceEvent& event) { checker.add(event); });
    std::vector<std::thread> workers;
    for (std::uint32_t i = 0; i < kChaosNodes; ++i) {
      workers.emplace_back([&cluster, i] {
        const proto::LockMode mode =
            i % 2 == 0 ? proto::LockMode::kW : proto::LockMode::kR;
        for (int k = 0; k < kChaosOps; ++k) {
          cluster.lock(NodeId{i}, LockId{0}, mode);
          std::this_thread::yield();
          cluster.unlock(NodeId{i}, LockId{0});
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    // Cluster teardown joins the receivers, so after this scope no event
    // can still be in flight toward the checker.
  }
  const lint::LintReport report = checker.finish();
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_GT(report.events_checked, 0u);
}

}  // namespace
}  // namespace hlock::workload
