// Telemetry under the deterministic schedule explorer: the registry's
// registration/record/snapshot races and the watchdog's begin/end/check
// races walked across seeds rather than left to the OS scheduler.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/registry.hpp"
#include "telemetry/watchdog.hpp"
#include "tests/sched/sched_test.hpp"
#include "util/sync_observer.hpp"

namespace hlock::telemetry {
namespace {

TEST(TelemetrySched, RecordersRaceSnapshotsAndCallbackChurn) {
  sched_test::explore([] {
    Registry registry;
    sched::Thread recorder_a("recorder-a", [&registry] {
      Counter& counter = registry.counter("hlock_sched_total");
      Histogram& histogram =
          registry.histogram("hlock_sched_ms", linear_bounds(1.0, 1.0, 4));
      for (int i = 0; i < 4; ++i) {
        counter.inc();
        histogram.record(static_cast<double>(i));
        sched::yield_point("test.record-a");
      }
    });
    sched::Thread recorder_b("recorder-b", [&registry] {
      // Get-or-create races recorder-a on the same names.
      Counter& counter = registry.counter("hlock_sched_total");
      for (int i = 0; i < 4; ++i) {
        counter.inc();
        registry.gauge("hlock_sched_depth").set(static_cast<double>(i));
        sched::yield_point("test.record-b");
      }
    });
    // Callback churn + snapshots interleave with both recorders.
    for (int round = 0; round < 3; ++round) {
      registry.register_gauge_fn("hlock_sched_cb_depth",
                                 [round] { return static_cast<double>(round); });
      (void)registry.snapshot();
      sched::yield_point("test.snapshot");
      registry.unregister_callbacks("hlock_sched_cb_");
    }
    recorder_a.join();
    recorder_b.join();
    const Snapshot snap = registry.snapshot();
    ASSERT_NE(snap.find("hlock_sched_total"), nullptr);
    EXPECT_EQ(snap.find("hlock_sched_total")->value, 8.0);
    EXPECT_EQ(snap.find("hlock_sched_ms")->histogram.count, 4u);
  });
}

TEST(TelemetrySched, WatchdogBeginEndRaceItsSweep) {
  sched_test::ExploreOptions options;
  options.seeds = 8;
  sched_test::explore(
      [] {
        Registry registry;
        WatchdogOptions watchdog_options;
        // A huge floor: sweeps race the bookkeeping, never flag.
        watchdog_options.floor = std::chrono::milliseconds(60000);
        StallWatchdog watchdog{registry, watchdog_options};
        sched::Thread client("client", [&watchdog] {
          for (int i = 0; i < 3; ++i) {
            const std::uint64_t key =
                watchdog.begin("node=1 lock=0 mode=W");
            sched::yield_point("test.waiting");
            watchdog.end(key);
          }
        });
        for (int i = 0; i < 3; ++i) {
          (void)watchdog.check_now();
          sched::yield_point("test.sweep");
        }
        client.join();
        EXPECT_EQ(watchdog.stalled_total(), 0u);
        const Snapshot snap = registry.snapshot();
        EXPECT_EQ(snap.find("hlock_request_wait_ms")->histogram.count, 3u);
        EXPECT_EQ(snap.find("hlock_pending_requests")->value, 0.0);
      },
      options);
}

}  // namespace
}  // namespace hlock::telemetry
