#include "proto/codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace hlock::proto {
namespace {

Message envelope(Payload payload) {
  return Message{NodeId{1}, NodeId{2}, LockId{3}, std::move(payload)};
}

/// Every payload kind with boundary values where the wire format has edges:
/// priority 0 and 255, seq 0 and max, empty and multi-entry token queues.
std::vector<Message> all_kinds_boundary_messages() {
  std::vector<Payload> payloads{
      Payload{HierRequest{NodeId{0}, LockMode::kR, 0, 0}},
      Payload{HierRequest{NodeId{7}, LockMode::kW,
                          0xFFFFFFFFFFFFFFFFull, 255}},
      Payload{HierGrant{LockMode::kNL, LockMode::kNL, 0}},
      Payload{HierGrant{LockMode::kU, LockMode::kU, 0xFFFFFFFFu}},
      Payload{HierToken{LockMode::kW, LockMode::kNL, {}}},
      Payload{HierToken{LockMode::kR, LockMode::kIR,
                        {QueuedRequest{NodeId{4}, LockMode::kIW, 9, 0},
                         QueuedRequest{NodeId{5}, LockMode::kW, 10, 255}}}},
      Payload{HierRelease{LockMode::kNL, 0}},
      Payload{HierRelease{LockMode::kR, 0xFFFFFFFFu}},
      Payload{HierFreeze{ModeSet::of({LockMode::kIR, LockMode::kR})}},
      Payload{HierFreeze{ModeSet{}}},
      Payload{NaimiRequest{NodeId{9}, 77}},
      Payload{NaimiToken{}},
  };
  std::vector<Message> messages;
  std::uint64_t seq = 0;
  for (Payload& payload : payloads) {
    Message m = envelope(std::move(payload));
    m.request = RequestId{NodeId{1}, seq};
    m.lamport = ++seq;
    messages.push_back(std::move(m));
  }
  return messages;
}

class CodecRoundTrip : public ::testing::TestWithParam<Payload> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const Message original = envelope(GetParam());
  const std::vector<std::byte> wire = encode(original);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

INSTANTIATE_TEST_SUITE_P(
    AllPayloads, CodecRoundTrip,
    ::testing::Values(
        Payload{HierRequest{NodeId{7}, LockMode::kR, 42}},
        Payload{HierRequest{NodeId{0}, LockMode::kW, 0}},
        Payload{HierGrant{LockMode::kIR, LockMode::kR, 7}},
        Payload{HierGrant{LockMode::kU, LockMode::kU, 0xFFFFFFFFu}},
        Payload{HierToken{LockMode::kW, LockMode::kNL, {}}},
        Payload{HierToken{LockMode::kR, LockMode::kIR,
                          {QueuedRequest{NodeId{4}, LockMode::kIW, 9},
                           QueuedRequest{NodeId{5}, LockMode::kW, 10}}}},
        Payload{HierRelease{LockMode::kNL, 0}},
        Payload{HierRelease{LockMode::kR, 41}},
        Payload{HierFreeze{ModeSet::of({LockMode::kIR, LockMode::kR})}},
        Payload{HierFreeze{ModeSet{}}},
        Payload{NaimiRequest{NodeId{9}, 77}},
        Payload{NaimiToken{}}));

TEST(Codec, TruncatedInputRejectedAtEveryLength) {
  const Message original = envelope(Payload{HierToken{
      LockMode::kR, LockMode::kIR,
      {QueuedRequest{NodeId{4}, LockMode::kIW, 9}}}});
  const std::vector<std::byte> wire = encode(original);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode(std::span(wire.data(), len)).has_value())
        << "accepted a truncation to " << len << " bytes";
  }
}

TEST(Codec, TrailingGarbageRejected) {
  std::vector<std::byte> wire = encode(envelope(Payload{NaimiToken{}}));
  wire.push_back(std::byte{0xAB});
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, UnknownMessageKindRejected) {
  std::vector<std::byte> wire = encode(envelope(Payload{NaimiToken{}}));
  // Byte 37 is the payload discriminator (version byte, 4 x u32 ids, two
  // u64 observability fields and the u32 recovery epoch precede it).
  wire[37] = std::byte{0x7F};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, InvalidModeRejected) {
  std::vector<std::byte> wire =
      encode(envelope(Payload{HierGrant{LockMode::kR, LockMode::kR, 1}}));
  // Byte 38 is the granted mode (37-byte envelope + 1 kind byte).
  wire[38] = std::byte{17};  // mode byte out of range
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, WrongVersionRejected) {
  std::vector<std::byte> wire = encode(envelope(Payload{NaimiToken{}}));
  ASSERT_EQ(wire[0], std::byte{kWireFormatVersion});
  wire[0] = std::byte{static_cast<std::uint8_t>(kWireFormatVersion + 1)};
  EXPECT_FALSE(decode(wire).has_value());
  wire[0] = std::byte{0};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, RequestIdAndLamportRoundTrip) {
  Message m = envelope(Payload{HierGrant{LockMode::kR, LockMode::kR, 5}});
  m.request = RequestId{NodeId{9}, 0xDEADBEEFCAFEull};
  m.lamport = 0x0123456789ABCDEFull;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request, m.request);
  EXPECT_EQ(decoded->lamport, m.lamport);
  EXPECT_EQ(*decoded, m);
}

TEST(Codec, HostileQueueCountRejected) {
  // A token message whose queue count claims more entries than the buffer
  // could possibly hold must be rejected before any allocation.
  std::vector<std::byte> wire = encode(envelope(
      Payload{HierToken{LockMode::kR, LockMode::kNL, {}}}));
  // Queue count is the last 4 bytes; write 0xFFFFFFFF.
  for (std::size_t i = wire.size() - 4; i < wire.size(); ++i) {
    wire[i] = std::byte{0xFF};
  }
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, EmptyInputRejected) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(WireWriterReader, PrimitivesRoundTrip) {
  std::vector<std::byte> buffer;
  WireWriter writer{buffer};
  writer.u8(0xAB);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.node(NodeId{11});
  writer.lock(LockId{22});
  writer.mode(LockMode::kIW);

  WireReader reader{buffer};
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.node(), NodeId{11});
  EXPECT_EQ(reader.lock(), LockId{22});
  EXPECT_EQ(reader.mode(), LockMode::kIW);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.u8().has_value());
}

TEST(WireWriterReader, LittleEndianLayout) {
  std::vector<std::byte> buffer;
  WireWriter writer{buffer};
  writer.u32(0x01020304);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0], std::byte{0x04});
  EXPECT_EQ(buffer[3], std::byte{0x01});
}

TEST(Codec, RoundTripPropertyAcrossAllKindsAndBoundaries) {
  for (const Message& original : all_kinds_boundary_messages()) {
    const auto decoded = decode(encode(original));
    ASSERT_TRUE(decoded.has_value()) << to_string(original);
    EXPECT_EQ(*decoded, original);
  }
}

TEST(Codec, EveryKindRejectsTruncationAtEveryPrefixLength) {
  for (const Message& original : all_kinds_boundary_messages()) {
    const std::vector<std::byte> wire = encode(original);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      EXPECT_FALSE(decode(std::span(wire.data(), len)).has_value())
          << to_string(original) << " accepted truncation to " << len;
    }
  }
}

TEST(Codec, EncodeIntoAppendsAndReusesTheBuffer) {
  const Message a = envelope(Payload{NaimiToken{}});
  const Message b =
      envelope(Payload{HierRelease{LockMode::kNL, 4}});
  std::vector<std::byte> buffer;
  encode_into(a, buffer);
  const std::size_t a_size = buffer.size();
  encode_into(b, buffer);  // appends — no clear between messages
  EXPECT_EQ(decode(std::span(buffer.data(), a_size)), a);
  EXPECT_EQ(decode(std::span(buffer).subspan(a_size)), b);
  // Steady-state reuse: clear keeps capacity, the next encode allocates
  // nothing.
  const std::size_t capacity = buffer.capacity();
  buffer.clear();
  encode_into(a, buffer);
  EXPECT_EQ(buffer.capacity(), capacity);
}

TEST(Codec, MaxSizedTokenQueueRoundTripsAndOversizeIsRejected) {
  HierToken token{LockMode::kW, LockMode::kNL, {}};
  token.queue.resize(kMaxTokenQueueEntries,
                     QueuedRequest{NodeId{2}, LockMode::kR, 1, 0});
  const Message max_message = envelope(Payload{token});
  const auto decoded = decode(encode(max_message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, max_message);

  // One more entry exceeds the wire cap: encode must refuse rather than
  // silently truncate the count (the old static_cast wrapped it).
  token.queue.push_back(QueuedRequest{NodeId{3}, LockMode::kW, 2, 0});
  EXPECT_THROW(encode(envelope(Payload{std::move(token)})),
               hlock::UsageError);
}

TEST(Codec, DecodedQueueCountCappedAgainstRemainingBytes) {
  // A count within the cap but larger than the remaining bytes could ever
  // back must be rejected before any allocation.
  std::vector<std::byte> wire = encode(envelope(
      Payload{HierToken{LockMode::kR, LockMode::kNL, {}}}));
  // Queue count is the last 4 bytes; claim 1000 entries with 0 remaining.
  wire[wire.size() - 4] = std::byte{0xE8};
  wire[wire.size() - 3] = std::byte{0x03};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(BatchCodec, RoundTripsAllKinds) {
  const std::vector<Message> messages = all_kinds_boundary_messages();
  std::vector<std::byte> frame;
  encode_batch_into(messages, frame);
  ASSERT_TRUE(is_batch_frame(frame));
  const auto decoded = decode_batch(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, messages);
}

TEST(BatchCodec, SingleMessageFramesAreNotBatchFrames) {
  const std::vector<std::byte> wire =
      encode(envelope(Payload{NaimiToken{}}));
  EXPECT_FALSE(is_batch_frame(wire));
  EXPECT_FALSE(decode_batch(wire).has_value());
}

TEST(BatchCodec, EmptyBatchRoundTrips) {
  std::vector<std::byte> frame;
  encode_batch_into({}, frame);
  const auto decoded = decode_batch(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(BatchCodec, RejectsTruncationAtEveryPrefixLength) {
  std::vector<Message> messages;
  messages.push_back(envelope(Payload{NaimiToken{}}));
  messages.push_back(envelope(Payload{HierToken{
      LockMode::kR, LockMode::kIR,
      {QueuedRequest{NodeId{4}, LockMode::kIW, 9, 0}}}}));
  std::vector<std::byte> frame;
  encode_batch_into(messages, frame);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_batch(std::span(frame.data(), len)).has_value())
        << "accepted a truncation to " << len << " bytes";
  }
}

TEST(BatchCodec, TrailingGarbageRejected) {
  std::vector<std::byte> frame;
  encode_batch_into(std::vector<Message>{envelope(Payload{NaimiToken{}})},
                    frame);
  frame.push_back(std::byte{0xAB});
  EXPECT_FALSE(decode_batch(frame).has_value());
}

TEST(BatchCodec, HostileMessageCountRejected) {
  // A count far beyond what the remaining bytes could hold must be
  // rejected before any allocation.
  std::vector<std::byte> frame;
  encode_batch_into(std::vector<Message>{envelope(Payload{NaimiToken{}})},
                    frame);
  for (std::size_t i = 1; i <= 4; ++i) frame[i] = std::byte{0xFF};
  EXPECT_FALSE(decode_batch(frame).has_value());
}

TEST(BatchCodec, CorruptedInnerLengthRejected) {
  std::vector<std::byte> frame;
  encode_batch_into(std::vector<Message>{envelope(Payload{NaimiToken{}})},
                    frame);
  // Bytes 5..8 are the first message's length prefix; shrink it below the
  // minimum message size.
  frame[5] = std::byte{0x01};
  frame[6] = std::byte{0x00};
  frame[7] = std::byte{0x00};
  frame[8] = std::byte{0x00};
  EXPECT_FALSE(decode_batch(frame).has_value());
}

TEST(Codec, EncodingIsCompact) {
  // Envelope (37 bytes: version, 4 ids, request seq, lamport, recovery
  // epoch) + kind (1) + payload; a grant carries two mode bytes and a
  // 4-byte grant epoch.
  EXPECT_EQ(encode(envelope(Payload{HierGrant{LockMode::kR, LockMode::kR,
                                              1}})).size(),
            44u);
  EXPECT_EQ(encode(envelope(Payload{HierRelease{LockMode::kNL, 2}})).size(),
            43u);
  EXPECT_EQ(encode(envelope(Payload{NaimiToken{}})).size(), 38u);
}

}  // namespace
}  // namespace hlock::proto
