#include "util/log.hpp"

#include <cstdio>

#include "util/sync.hpp"

namespace hlock {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
/// Serializes line emission so threaded-transport runs do not interleave.
Mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_threshold.load(std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  MutexLock guard(g_emit_mutex);
  std::fprintf(stderr, "[hlock %-5s] %s\n", level_name(level),
               message.c_str());
}
}  // namespace detail

}  // namespace hlock
