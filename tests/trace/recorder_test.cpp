// Tests of the trace recorder and its integration with the simulated
// cluster's message observer.
#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_cluster.hpp"
#include "util/check.hpp"

namespace hlock::trace {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

Message sample_message() {
  return Message{NodeId{1}, NodeId{2}, LockId{0},
                 proto::HierRequest{NodeId{1}, LockMode::kR, 5}};
}

TEST(TraceRecorder, RecordsAllEventKinds) {
  TraceRecorder recorder;
  recorder.record_message(SimTime::ms(1), sample_message());
  recorder.record_enter_cs(SimTime::ms(2), NodeId{2}, "mode R");
  recorder.record_exit_cs(SimTime::ms(3), NodeId{2});
  recorder.record_upgrade(SimTime::ms(4), NodeId{0});
  recorder.note(SimTime::ms(5), NodeId{3}, "checkpoint");

  ASSERT_EQ(recorder.events().size(), 5u);
  EXPECT_EQ(recorder.total_recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_FALSE(recorder.truncated());
  const auto histogram = recorder.histogram();
  ASSERT_EQ(histogram.size(), kEventKindCount);
  for (EventKind kind : {EventKind::kMessage, EventKind::kEnterCs,
                         EventKind::kExitCs, EventKind::kUpgraded,
                         EventKind::kNote}) {
    EXPECT_EQ(histogram[static_cast<std::size_t>(kind)], 1u);
  }
  std::size_t total = 0;
  for (std::size_t count : histogram) total += count;
  EXPECT_EQ(total, 5u) << "no event counted under another kind";
}

TEST(TraceRecorder, RenderContainsTimesNodesAndDetails) {
  TraceRecorder recorder;
  recorder.record_message(SimTime::ms(1), sample_message());
  recorder.record_enter_cs(SimTime::ms_f(2.5), NodeId{2}, "R granted");
  const std::string out = recorder.render();
  EXPECT_NE(out.find("1.000 ms"), std::string::npos);
  EXPECT_NE(out.find("2.500 ms"), std::string::npos);
  EXPECT_NE(out.find("REQUEST"), std::string::npos);
  EXPECT_NE(out.find("enter-cs"), std::string::npos);
  EXPECT_NE(out.find("R granted"), std::string::npos);
}

TEST(TraceRecorder, NodeFilterRestrictsView) {
  TraceRecorder recorder;
  recorder.record_message(SimTime::ms(1), sample_message());  // node1->node2
  recorder.record_enter_cs(SimTime::ms(2), NodeId{2});
  recorder.record_enter_cs(SimTime::ms(3), NodeId{7});
  const std::string view = recorder.render(NodeId{2});
  EXPECT_NE(view.find("REQUEST"), std::string::npos)
      << "messages touching node2 stay visible";
  EXPECT_NE(view.find("enter-cs"), std::string::npos);
  EXPECT_EQ(view.find("node7"), std::string::npos);
}

TEST(TraceRecorder, RingBufferEvictsOldest) {
  TraceRecorder recorder{4};
  for (int i = 0; i < 10; ++i) {
    recorder.note(SimTime::ms(i), NodeId{0}, "event " + std::to_string(i));
  }
  EXPECT_EQ(recorder.events().size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_TRUE(recorder.truncated());
  EXPECT_EQ(recorder.events().front().detail, "event 6");
  EXPECT_NE(recorder.render().find("6 earlier events dropped"),
            std::string::npos);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder recorder{2};
  for (int i = 0; i < 5; ++i) {
    recorder.note(SimTime::ms(i), NodeId{0}, "x");
  }
  ASSERT_EQ(recorder.dropped(), 3u);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_FALSE(recorder.truncated());
}

TEST(TraceRecorder, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRecorder{0}, UsageError);
}

TEST(TraceRecorder, CapturesClusterTraffic) {
  runtime::SimClusterOptions options;
  options.node_count = 3;
  options.message_latency = DurationDist::constant(SimTime::ms(1));
  runtime::SimCluster cluster{options};

  TraceRecorder recorder;
  cluster.set_message_observer(
      [&recorder](SimTime at, const Message& message) {
        recorder.record_message(at, message);
      });
  cluster.set_grant_handler(
      [&recorder, &cluster](NodeId node, LockId, bool upgraded) {
        if (upgraded) {
          recorder.record_upgrade(cluster.simulator().now(), node);
        } else {
          recorder.record_enter_cs(cluster.simulator().now(), node);
        }
      });

  cluster.request(NodeId{1}, LockId{0}, LockMode::kU);
  cluster.simulator().run_to_completion();
  cluster.upgrade(NodeId{1}, LockId{0});
  cluster.simulator().run_to_completion();

  const auto histogram = recorder.histogram();
  EXPECT_GE(histogram[static_cast<std::size_t>(EventKind::kMessage)], 2u)
      << "request + token at least";
  EXPECT_EQ(histogram[static_cast<std::size_t>(EventKind::kEnterCs)], 1u);
  EXPECT_EQ(histogram[static_cast<std::size_t>(EventKind::kUpgraded)], 1u);
  EXPECT_NE(recorder.render().find("TOKEN"), std::string::npos);
}

}  // namespace
}  // namespace hlock::trace
