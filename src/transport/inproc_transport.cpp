#include "transport/inproc_transport.hpp"

#include "proto/codec.hpp"
#include "util/check.hpp"

namespace hlock::transport {

InProcTransport::InProcTransport(const InProcOptions& options)
    : options_(options), latency_rng_(Rng{options.seed}.split(0x7A57u)) {
  HLOCK_REQUIRE(options.node_count >= 1,
                "a transport needs at least one node");
  mailboxes_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& InProcTransport::mailbox(proto::NodeId node) {
  HLOCK_REQUIRE(node.value() < mailboxes_.size(), "unknown node id");
  return *mailboxes_[node.value()];
}

void InProcTransport::send(const proto::Message& message) {
  proto::Message to_deliver = message;
  if (options_.codec_roundtrip) {
    const std::vector<std::byte> wire = proto::encode(message);
    std::optional<proto::Message> decoded = proto::decode(wire);
    HLOCK_INVARIANT(decoded.has_value() && *decoded == message,
                    "codec round-trip corrupted a message");
    to_deliver = std::move(*decoded);
  }

  Mailbox::Clock::time_point deliver_at;
  {
    MutexLock guard(latency_mutex_);
    const SimTime latency = options_.latency.sample(latency_rng_);
    deliver_at = Mailbox::Clock::now() +
                 std::chrono::nanoseconds(latency.count_ns());
    auto& front = channel_front_[{message.from, message.to}];
    if (deliver_at <= front) {
      deliver_at = front + std::chrono::nanoseconds(1);
    }
    front = deliver_at;
  }
  mailbox(message.to).push(std::move(to_deliver), deliver_at);
  sent_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<proto::Message> InProcTransport::recv(proto::NodeId node) {
  return mailbox(node).pop();
}

std::optional<proto::Message> InProcTransport::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  return mailbox(node).pop_until(Mailbox::Clock::now() + timeout);
}

void InProcTransport::shutdown() {
  for (auto& box : mailboxes_) box->close();
}

}  // namespace hlock::transport
