#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hlock::stats {
namespace {

TEST(Histogram, EmptyInput) {
  EXPECT_EQ(render_histogram({}), "(no samples)\n");
}

TEST(Histogram, SingleValuePopulatesOneBucket) {
  const std::string out = render_histogram({5.0, 5.0, 5.0});
  EXPECT_NE(out.find("3 (100.0%)"), std::string::npos);
}

TEST(Histogram, CountsLandInTheRightBuckets) {
  HistogramOptions options;
  options.buckets = 2;
  // Range [0, 10): 3 samples below 5, 1 at/above.
  const std::string out =
      render_histogram({0.0, 1.0, 2.0, 10.0}, options);
  EXPECT_NE(out.find("3 (75.0%)"), std::string::npos);
  EXPECT_NE(out.find("1 (25.0%)"), std::string::npos);
}

TEST(Histogram, EveryLineHasBoundsUnitAndBar) {
  HistogramOptions options;
  options.buckets = 4;
  options.unit = "us";
  const std::string out =
      render_histogram({1, 2, 3, 4, 5, 6, 7, 8}, options);
  int lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("us"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
}

TEST(Histogram, PeakBucketGetsFullBar) {
  HistogramOptions options;
  options.buckets = 2;
  options.bar_width = 10;
  const std::string out = render_histogram({0, 0, 0, 0, 9.9}, options);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(Histogram, LogScaleSpreadsHeavyTails) {
  // 1000 small samples plus a few huge ones: linear buckets put ~all mass
  // in bucket 0; log buckets spread the small ones across several.
  std::vector<double> samples;
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(0.1 + rng.uniform01());
  }
  samples.push_back(1000.0);

  HistogramOptions linear;
  linear.buckets = 8;
  HistogramOptions log_scale = linear;
  log_scale.log_scale = true;

  auto nonempty_buckets = [](const std::string& out) {
    int count = 0;
    std::size_t pos = 0;
    while ((pos = out.find('\n', pos)) != std::string::npos) {
      ++pos;
      // A bucket line with zero count renders "... 0 (0.0%)".
      const std::size_t line_start = out.rfind('\n', pos - 2);
      const std::string line =
          out.substr(line_start == std::string::npos ? 0 : line_start,
                     pos - line_start);
      if (line.find(" 0 (0.0%)") == std::string::npos) ++count;
    }
    return count;
  };
  EXPECT_GT(nonempty_buckets(render_histogram(samples, log_scale)),
            nonempty_buckets(render_histogram(samples, linear)));
}

TEST(Histogram, LogScaleToleratesNonPositiveSamples) {
  // Regression guard: zeros and negatives have no logarithm; the renderer
  // clamps them to a positive floor (a fixed dynamic range below the max)
  // instead of degenerating the bucket bounds into NaN/-inf.
  HistogramOptions options;
  options.log_scale = true;
  options.buckets = 6;
  const std::string out =
      render_histogram({0.0, -1.0, 0.5, 100.0}, options);
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;
  // The two non-positive samples collapse into the first bucket.
  EXPECT_NE(out.find("2 (50.0%)"), std::string::npos) << out;
}

TEST(Histogram, LogScaleAllZeroSamplesStayInOneBucket) {
  HistogramOptions options;
  options.log_scale = true;
  options.buckets = 4;
  const std::string out = render_histogram({0.0, 0.0, 0.0}, options);
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;
  EXPECT_NE(out.find("3 (100.0%)"), std::string::npos) << out;
}

TEST(Histogram, Validation) {
  HistogramOptions zero_buckets;
  zero_buckets.buckets = 0;
  EXPECT_THROW(render_histogram({1.0}, zero_buckets), UsageError);
  HistogramOptions zero_width;
  zero_width.bar_width = 0;
  EXPECT_THROW(render_histogram({1.0}, zero_width), UsageError);
}

TEST(BucketedHistogram, ValidatesItsShape) {
  EXPECT_THROW(render_bucketed_histogram({1.0, 2.0}, {1, 2}), UsageError);
  HistogramOptions zero_width;
  zero_width.bar_width = 0;
  EXPECT_THROW(render_bucketed_histogram({1.0}, {1, 0}, zero_width),
               UsageError);
}

TEST(BucketedHistogram, AllZeroCountsRenderNoSamples) {
  EXPECT_EQ(render_bucketed_histogram({1.0, 2.0}, {0, 0, 0}),
            "(no samples)\n");
}

TEST(BucketedHistogram, RendersEveryBucketAndTheOverflowRow) {
  const std::string out = render_bucketed_histogram({1.0, 2.0}, {1, 2, 3});
  EXPECT_NE(out.find("+Inf"), std::string::npos) << out;
  EXPECT_NE(out.find("1 (16.7%)"), std::string::npos) << out;
  EXPECT_NE(out.find("2 (33.3%)"), std::string::npos) << out;
  EXPECT_NE(out.find("3 (50.0%)"), std::string::npos) << out;
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(BucketedHistogram, ElidesInteriorEmptyRuns) {
  // Exponential layouts are mostly empty; interior runs collapse to one
  // "..." line while the neighbors of populated buckets stay for context.
  const std::vector<double> bounds{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint64_t> counts{5, 0, 0, 0, 0, 0, 0, 0, 5};
  const std::string out = render_bucketed_histogram(bounds, counts);
  std::size_t ellipses = 0;
  std::size_t lines = 0;
  for (std::size_t at = 0; (at = out.find("  ...\n", at)) != std::string::npos;
       ++at) {
    ++ellipses;
  }
  for (const char c : out) lines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(ellipses, 1u) << out;
  // First bucket, its empty neighbor, "...", the overflow's empty
  // neighbor, and the overflow row itself.
  EXPECT_EQ(lines, 5u) << out;
}

}  // namespace
}  // namespace hlock::stats
