#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace hlock {
namespace {

bool parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

CliParser make_parser() {
  CliParser cli{"prog", "test parser"};
  cli.add_option("nodes", "16", "node count");
  cli.add_option("name", "default", "a string");
  cli.add_option("scale", "1.5", "a double");
  cli.add_flag("verbose", "a flag");
  return cli;
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("nodes", 1, 100), 16);
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0, 10), 1.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.was_set("nodes"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--nodes", "42", "--name", "hello"}));
  EXPECT_EQ(cli.get_int("nodes", 1, 100), 42);
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_TRUE(cli.was_set("nodes"));
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--nodes=7", "--scale=2.25", "--verbose=true"}));
  EXPECT_EQ(cli.get_int("nodes", 1, 100), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0, 10), 2.25);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, BareFlagIsTrue) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--verbose"}));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagFalseExplicit) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--verbose=false"}));
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--help"}));
  CliParser cli2 = make_parser();
  EXPECT_FALSE(parse(cli2, {"-h"}));
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--nodes"), std::string::npos);
  EXPECT_NE(help.find("default: 16"), std::string::npos);
  EXPECT_NE(help.find("test parser"), std::string::npos);
}

TEST(Cli, UnknownOptionRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"--bogus", "1"}), UsageError);
}

TEST(Cli, MissingValueRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"--nodes"}), UsageError);
}

TEST(Cli, NonOptionArgumentRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"positional"}), UsageError);
}

TEST(Cli, IntValidation) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--nodes", "200"}));
  EXPECT_THROW(cli.get_int("nodes", 1, 100), UsageError);  // out of range
  CliParser cli2 = make_parser();
  EXPECT_TRUE(parse(cli2, {"--nodes", "abc"}));
  EXPECT_THROW(cli2.get_int("nodes", 1, 100), UsageError);  // not a number
  CliParser cli3 = make_parser();
  EXPECT_TRUE(parse(cli3, {"--nodes", "12x"}));
  EXPECT_THROW(cli3.get_int("nodes", 1, 100), UsageError);  // trailing junk
}

TEST(Cli, DoubleValidation) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--scale", "nope"}));
  EXPECT_THROW(cli.get_double("scale", 0, 10), UsageError);
  CliParser cli2 = make_parser();
  EXPECT_TRUE(parse(cli2, {"--scale", "99"}));
  EXPECT_THROW(cli2.get_double("scale", 0, 10), UsageError);
}

TEST(Cli, FlagValidation) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--verbose=maybe"}));
  EXPECT_THROW(cli.get_flag("verbose"), UsageError);
  EXPECT_THROW(cli.get_flag("nodes"), UsageError);  // not a flag
}

TEST(Cli, QueryingUndeclaredOptionRejected) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_THROW(cli.get_string("nonexistent"), UsageError);
}

TEST(Cli, DuplicateDeclarationRejected) {
  CliParser cli{"prog", "x"};
  cli.add_option("a", "1", "first");
  EXPECT_THROW(cli.add_option("a", "2", "again"), UsageError);
  EXPECT_THROW(cli.add_flag("a", "again"), UsageError);
}

TEST(Cli, LastValueWins) {
  CliParser cli = make_parser();
  EXPECT_TRUE(parse(cli, {"--nodes", "1", "--nodes", "2"}));
  EXPECT_EQ(cli.get_int("nodes", 1, 100), 2);
}

}  // namespace
}  // namespace hlock
