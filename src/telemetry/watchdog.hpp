// Runtime stall watchdog: flags requests waiting far beyond the observed
// p99 wait time.
//
// The model checker's liveness pass (PR 6) proves starvation-freedom over
// small configurations; this is the live-cluster counterpart of the same
// claim. Every blocking acquire brackets itself with begin()/end(); a
// background thread (or an explicit check_now()) compares each pending
// wait against an adaptive threshold
//
//     max(multiplier × observed-p99-wait, floor)
//
// where the p99 comes from the watchdog's own all-requests wait
// histogram. A wait beyond the threshold bumps the
// `hlock_stalled_requests_total` counter and invokes the on_stall hook
// exactly once per request (re-arming only if the request is still
// pending on a later sweep after 2× the threshold, so a genuinely wedged
// request keeps making noise but a slow one doesn't spam). The sim wires
// on_stall to dump_flight_record + a metrics snapshot for post-mortem.
//
// The p99 floor exists because early in a run the histogram is empty or
// tiny; with no signal yet, only waits beyond the configured floor count
// as stalls.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "telemetry/registry.hpp"
#include "util/sync.hpp"

namespace hlock::telemetry {

struct WatchdogOptions {
  /// Stall threshold = max(multiplier × p99 wait, floor).
  double multiplier = 8.0;
  std::chrono::milliseconds floor{100};
  /// Sweep period of the background thread (start()).
  std::chrono::milliseconds check_interval{250};
};

/// Passed to the on_stall hook, one per flagged request.
struct StallReport {
  std::string label;     ///< as given to begin()
  double waited_ms = 0;  ///< wait so far when flagged
  double threshold_ms = 0;
  double p99_ms = 0;     ///< observed p99 the threshold derives from
  std::uint64_t pending = 0;  ///< total requests in flight at flag time
};

/// See file comment.
class StallWatchdog {
 public:
  /// Instruments itself into `registry`: hlock_stalled_requests_total,
  /// hlock_request_wait_ms (histogram) and hlock_pending_requests (gauge).
  StallWatchdog(Registry& registry, WatchdogOptions options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Invoked (outside the watchdog mutex, on the sweeping thread) for each
  /// newly flagged stall. Set before start().
  void set_on_stall(std::function<void(const StallReport&)> hook);

  /// A request started blocking; returns the key for the matching end().
  /// `label` names the request in reports ("node=2 lock=L mode=W").
  std::uint64_t begin(std::string label) HLOCK_EXCLUDES(mutex_);

  /// The request stopped waiting (granted or failed). Records the wait in
  /// the histogram. Unknown keys are ignored (idempotent).
  void end(std::uint64_t key) HLOCK_EXCLUDES(mutex_);

  /// Sweeps pending requests once; returns how many were newly flagged.
  std::size_t check_now() HLOCK_EXCLUDES(mutex_);

  /// Launches the periodic sweep thread / stops it. start() is a no-op
  /// when running; the destructor stops.
  void start();
  void stop();

  /// Current stall threshold in ms (for tests and dashboards).
  double threshold_ms() const;

  std::uint64_t stalled_total() const { return stalled_.value(); }

 private:
  struct Pending {
    std::string label;
    std::chrono::steady_clock::time_point since;
    /// Next sweep time at which this request may be (re-)flagged.
    std::chrono::steady_clock::time_point arm_at;
    bool flagged = false;
  };

  void run();

  const WatchdogOptions options_;
  Counter& stalled_;
  Histogram& wait_ms_;
  Gauge& pending_gauge_;
  std::function<void(const StallReport&)> on_stall_;

  mutable Mutex mutex_;
  CondVar wake_cv_;
  bool stopping_ HLOCK_GUARDED_BY(mutex_) = false;
  bool running_ HLOCK_GUARDED_BY(mutex_) = false;
  std::uint64_t next_key_ HLOCK_GUARDED_BY(mutex_) = 1;
  std::map<std::uint64_t, Pending> pending_ HLOCK_GUARDED_BY(mutex_);

  sched::Thread thread_;
};

}  // namespace hlock::telemetry
