// The request-mode distribution of the evaluation workload.
//
// Paper §4: "The mode of lock requests was randomized so that the IR, R, U,
// IW and W requests are 80%, 10%, 4%, 5% and 1% of the total requests,
// respectively. These parameters reflect the typical frequency of request
// types for such applications in practice where reads dominate writes."
#pragma once

#include "proto/lock_mode.hpp"
#include "util/rng.hpp"

namespace hlock::workload {

using proto::LockMode;

/// Probabilities of each request mode; must sum to 1.
struct ModeMix {
  double ir = 0.80;
  double r = 0.10;
  double u = 0.04;
  double iw = 0.05;
  double w = 0.01;

  /// The paper's default mix (80/10/4/5/1).
  static ModeMix paper() { return {}; }

  /// A read-only mix (IR/R only), used by concurrency stress tests.
  static ModeMix read_only() { return {0.85, 0.15, 0.0, 0.0, 0.0}; }

  /// A write-heavy mix, used to stress queueing and freezing.
  static ModeMix write_heavy() { return {0.20, 0.10, 0.15, 0.25, 0.30}; }

  /// Validates that the probabilities are non-negative and sum to ~1.
  bool valid() const;

  /// Draws one request mode.
  LockMode sample(Rng& rng) const;
};

}  // namespace hlock::workload
