// Tests of the analytical response-time model: exact conflict
// probabilities (hand-computable from Table 1a and the op plans), the
// operational-law shape, and qualitative agreement with the simulator.
#include "analysis/response_model.hpp"

#include <gtest/gtest.h>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "util/check.hpp"

namespace hlock::analysis {
namespace {

using workload::ModeMix;

TEST(ConflictProbability, ReadOnlyMixNeverConflicts) {
  // IR ops take table.IR + entry.R; R ops take table.R. IR/R/table
  // combinations are all compatible, and entry R vs entry R too.
  EXPECT_DOUBLE_EQ(conflict_probability(ModeMix::read_only(), 4), 0.0);
}

TEST(ConflictProbability, PureWritersAlwaysConflict) {
  const ModeMix writers{0, 0, 0, 0, 1.0};  // table W only
  EXPECT_DOUBLE_EQ(conflict_probability(writers, 4), 1.0);
}

TEST(ConflictProbability, EntryWritersConflictAtEntryRate) {
  // Two entry-write ops: table IW vs IW compatible; entry W vs W conflict
  // iff the same entry is drawn: exactly 1/entries.
  const ModeMix entry_writers{0, 0, 0, 1.0, 0};
  EXPECT_DOUBLE_EQ(conflict_probability(entry_writers, 4), 0.25);
  EXPECT_DOUBLE_EQ(conflict_probability(entry_writers, 10), 0.10);
}

TEST(ConflictProbability, UpgradersCountAsEntryWriters) {
  // Upgrade ops end up holding entry W (Rule 7): two upgraders conflict at
  // the same-entry rate, like entry writers.
  const ModeMix upgraders{0, 0, 1.0, 0, 0};
  EXPECT_DOUBLE_EQ(conflict_probability(upgraders, 5), 0.2);
}

TEST(ConflictProbability, TableReadVsEntryWriteConflictsAtTableLevel) {
  // table-read (R) vs entry-write (table IW + entry W): R vs IW conflict
  // at the table -> certain conflict.
  const ModeMix half{0, 0.5, 0, 0.5, 0};
  // Pairs: (R,R)=0, (R,IW)=1, (IW,R)=1, (IW,IW)=1/entries.
  const double expected = 0.25 * 0 + 0.25 * 1 + 0.25 * 1 + 0.25 * (1.0 / 4);
  EXPECT_DOUBLE_EQ(conflict_probability(half, 4), expected);
}

TEST(ConflictProbability, PaperMixIsReadDominatedAndLow) {
  const double p = conflict_probability(ModeMix::paper(), 6);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.15) << "the 80/10/4/5/1 mix should rarely conflict";
}

TEST(ConflictProbability, MoreEntriesMeanFewerConflicts) {
  EXPECT_GT(conflict_probability(ModeMix::paper(), 2),
            conflict_probability(ModeMix::paper(), 12));
}

TEST(ConflictProbability, Validation) {
  ModeMix bad;
  bad.w = 0.9;
  EXPECT_THROW(conflict_probability(bad, 4), UsageError);
  EXPECT_THROW(conflict_probability(ModeMix::paper(), 0), UsageError);
}

TEST(Model, FlatThenLinearShape) {
  ModelParams params;
  params.cs_ms = 15;
  params.idle_ms = 150;
  params.net_ms = 0.15;

  params.nodes = 2;
  const auto small = predict(params);
  EXPECT_LT(small.queueing_ms, small.demand_ms)
      << "below the knee queueing must be a fraction of one demand";

  params.nodes = 400;
  const auto large = predict(params);
  EXPECT_GT(large.queueing_ms, 10 * large.demand_ms);

  // Far beyond the knee, each extra node adds one demand (asymptotic
  // slope of the machine-repairman fixed point).
  params.nodes = 401;
  const auto larger = predict(params);
  EXPECT_NEAR(larger.response_ms - large.response_ms, large.demand_ms,
              large.demand_ms * 0.05);
}

TEST(Model, KneeMovesRightWithTheRatio) {
  ModelParams low;
  low.idle_ms = 15;  // ratio 1
  ModelParams high;
  high.idle_ms = 15 * 25;  // ratio 25
  EXPECT_LT(predict(low).knee_nodes, predict(high).knee_nodes);
}

TEST(Model, ZeroConflictNeverQueues) {
  ModelParams params;
  params.mix = ModeMix::read_only();
  params.nodes = 10000;
  const auto prediction = predict(params);
  EXPECT_EQ(prediction.queueing_ms, 0.0);
  EXPECT_EQ(prediction.demand_ms, 0.0);
  EXPECT_GT(prediction.response_ms, 0.0) << "transit still costs time";
}

TEST(Model, QualitativeAgreementWithSimulation) {
  // The model must track the simulator's ORDERING across ratios and node
  // counts (its purpose is shape, not absolute accuracy).
  const auto preset = sim::ibm_sp_preset();
  auto simulate = [&](std::size_t nodes, int ratio) {
    bench::ExperimentConfig config;
    config.nodes = nodes;
    config.net_latency = preset.message_latency;
    config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
    config.idle_time = DurationDist::uniform(SimTime::ms(15L * ratio), 0.5);
    config.ops_per_node = 30;
    config.seed = 97 + nodes;
    return bench::run_averaged(config, 2).mean_latency_ms;
  };
  auto model = [](std::size_t nodes, int ratio) {
    ModelParams params;
    params.nodes = nodes;
    params.cs_ms = 15;
    params.idle_ms = 15.0 * ratio;
    params.net_ms = 0.15;
    return predict(params).response_ms;
  };

  // Ordering across ratios at fixed n.
  EXPECT_GT(simulate(48, 1), simulate(48, 25));
  EXPECT_GT(model(48, 1), model(48, 25));
  // Growth across n at fixed ratio.
  EXPECT_GT(simulate(64, 1), simulate(8, 1));
  EXPECT_GT(model(64, 1), model(8, 1));
  // Saturated regime: model within a small factor of the simulation.
  const double sim_value = simulate(64, 1);
  const double model_value = model(64, 1);
  EXPECT_GT(model_value, sim_value * 0.2);
  EXPECT_LT(model_value, sim_value * 5.0);
}

}  // namespace
}  // namespace hlock::analysis
