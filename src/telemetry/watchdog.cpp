#include "telemetry/watchdog.hpp"

#include <utility>
#include <vector>

namespace hlock::telemetry {

namespace {
double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}
}  // namespace

StallWatchdog::StallWatchdog(Registry& registry, WatchdogOptions options)
    : options_(options),
      stalled_(registry.counter("hlock_stalled_requests_total")),
      wait_ms_(registry.histogram("hlock_request_wait_ms")),
      pending_gauge_(registry.gauge("hlock_pending_requests")) {}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::set_on_stall(
    std::function<void(const StallReport&)> hook) {
  on_stall_ = std::move(hook);
}

std::uint64_t StallWatchdog::begin(std::string label) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(mutex_);
  const std::uint64_t key = next_key_++;
  pending_.emplace(key, Pending{std::move(label), now, now, false});
  pending_gauge_.set(static_cast<double>(pending_.size()));
  return key;
}

void StallWatchdog::end(std::uint64_t key) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(mutex_);
  const auto it = pending_.find(key);
  if (it == pending_.end()) {
    return;
  }
  wait_ms_.record(ms_between(it->second.since, now));
  pending_.erase(it);
  pending_gauge_.set(static_cast<double>(pending_.size()));
}

double StallWatchdog::threshold_ms() const {
  const double p99 = wait_ms_.quantile(0.99);
  const double floor_ms =
      std::chrono::duration<double, std::milli>(options_.floor).count();
  return std::max(options_.multiplier * p99, floor_ms);
}

std::size_t StallWatchdog::check_now() {
  const auto now = std::chrono::steady_clock::now();
  // The p99 read touches the histogram's atomics only — safe without the
  // watchdog mutex, and taking it outside keeps record paths short.
  const double threshold = threshold_ms();
  const auto threshold_dur =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(threshold));

  std::vector<StallReport> reports;
  {
    MutexLock lock(mutex_);
    for (auto& [key, p] : pending_) {
      if (now < p.arm_at || now - p.since < threshold_dur) {
        continue;
      }
      StallReport report;
      report.label = p.label;
      report.waited_ms = ms_between(p.since, now);
      report.threshold_ms = threshold;
      report.p99_ms = wait_ms_.quantile(0.99);
      report.pending = pending_.size();
      reports.push_back(std::move(report));
      p.flagged = true;
      // Re-arm far enough out that a wedged request re-reports, while a
      // merely slow one finishes quietly in between.
      p.arm_at = now + 2 * threshold_dur;
    }
  }
  for (const StallReport& report : reports) {
    stalled_.inc();
    if (on_stall_) {
      on_stall_(report);
    }
  }
  return reports.size();
}

void StallWatchdog::start() {
  {
    MutexLock lock(mutex_);
    if (running_) {
      return;
    }
    running_ = true;
    stopping_ = false;
  }
  thread_ = sched::Thread("telemetry-watchdog", [this] { run(); });
}

void StallWatchdog::stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) {
      return;
    }
    stopping_ = true;
    wake_cv_.notify_all();
  }
  thread_.join();
  MutexLock lock(mutex_);
  running_ = false;
}

void StallWatchdog::run() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      const auto deadline =
          std::chrono::steady_clock::now() + options_.check_interval;
      while (!stopping_) {
        if (wake_cv_.wait_until(mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) {
        return;
      }
    }
    check_now();
  }
}

}  // namespace hlock::telemetry
