// The discrete-event simulation loop.
//
// Substitute for the paper's physical testbeds (a 16-node Linux/TCP cluster
// and a 120-node IBM SP): protocol logic is exercised unmodified while time
// and the network are modelled. The simulator owns the virtual clock and the
// pending-event set; everything else (network latency, workload think times)
// schedules callbacks on it.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/check.hpp"
#include "util/sim_time.hpp"

namespace hlock::sim {

/// Single-threaded discrete-event simulator with a deterministic total
/// order of events (see EventQueue).
class Simulator {
 public:
  /// Current simulated time. Starts at zero.
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` from now (delay >= 0).
  void schedule_in(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute time `at` (must not be in the past).
  void schedule_at(SimTime at, std::function<void()> action);

  /// Runs events until the queue drains or `deadline` is passed (events
  /// scheduled strictly after the deadline stay pending; the clock stops at
  /// the deadline or the last executed event, whichever is later).
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs events until the queue drains completely.
  std::uint64_t run_to_completion();

  /// Runs at most `max_events` events (or until the queue drains).
  /// Returns the number executed.
  std::uint64_t run_events(std::uint64_t max_events);

  /// Events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Pending events not yet executed.
  std::size_t events_pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_{};
  std::uint64_t executed_ = 0;
};

}  // namespace hlock::sim
