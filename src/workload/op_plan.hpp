// Application operations of the multi-airline reservation workload and
// their lock-acquisition plans under each protocol variant (paper §4.1).
//
// The shared data is a table of ticket prices. The hierarchical protocol
// associates one lock with the whole table and one with each entry; the
// drawn request mode determines the operation:
//
//   IR -> read one entry        (table IR, entry R)
//   R  -> read the whole table  (table R)
//   U  -> read-modify-write one entry (table IW, entry U upgraded to W)
//   IW -> write one entry       (table IW, entry W)
//   W  -> rewrite the table     (table W)
//
// Naimi's protocol cannot distinguish granularities or modes, giving the
// paper's two comparison variants:
//   * "same work"  — same functionality: a whole-table operation acquires
//     every entry lock, in a fixed ascending order to avoid deadlock;
//   * "pure"       — same number of lock operations on the primary
//     resource, functionally weaker (a single lock stands in for the whole
//     table).
// For entry-level operations all variants acquire only the entry lock —
// table locking in intention mode has no Naimi equivalent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"

namespace hlock::workload {

using proto::LockId;
using proto::LockMode;

/// The five application operations (see file comment).
enum class OpKind {
  kEntryRead,
  kTableRead,
  kEntryUpgrade,
  kEntryWrite,
  kTableWrite,
};

/// Name of an operation kind ("entry-read", ...).
std::string to_string(OpKind kind);

/// Maps a drawn request mode to the operation it stands for.
OpKind op_for_mode(LockMode mode);

/// Which locking scheme the application instance uses.
enum class AppVariant {
  kHierarchical,   ///< the paper's protocol: table + entry locks, 5 modes
  kNaimiPure,      ///< Naimi baseline, one lock per operation
  kNaimiSameWork,  ///< Naimi baseline, full functional equivalence
};

/// Name of a variant ("hierarchical", "naimi-pure", "naimi-same-work").
std::string to_string(AppVariant variant);

/// The lock protecting the whole ticket table (coarse granularity).
LockId table_lock();

/// The lock protecting table entry `index` (fine granularity).
LockId entry_lock(std::size_t index);

/// Every lock id a workload over `entries` table entries can touch
/// (table lock first) — used for invariant sweeps.
std::vector<LockId> all_locks(std::size_t entries);

/// One lock acquisition within an operation.
struct LockStep {
  LockId lock;
  LockMode mode = LockMode::kNL;
  /// Rule 7: acquire in U, upgrade to W midway through the critical
  /// section (hierarchical entry-upgrade operations only).
  bool upgrade_midway = false;
};

/// The ordered lock acquisitions `variant` performs for one operation of
/// `kind` on entry `entry` of a table with `entries` entries. Locks are
/// released in reverse order. Orders are globally consistent (table before
/// entries, entries ascending), which rules out application-level deadlock.
std::vector<LockStep> plan_op(AppVariant variant, OpKind kind,
                              std::size_t entry, std::size_t entries);

}  // namespace hlock::workload
