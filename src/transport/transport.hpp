// Abstract message transport.
//
// The threaded runtime runs over any Transport: the in-process mailbox
// transport (fast, latency-injectable) or the TCP loopback transport
// (real sockets, real wire format). Implementations must provide reliable
// per-ordered-channel FIFO delivery, which both TCP and the mailbox
// transport guarantee — the protocol's release/request ordering analysis
// depends on it.
//
// The batch entry points (send_batch / recv_ready) exist purely for
// throughput: one automaton step often emits several messages, and a busy
// receiver often has several matured messages waiting. Default
// implementations fall back to the one-message forms, so batching is an
// optional optimization with identical observable semantics — transports
// that coalesce must preserve per-channel FIFO order exactly as if each
// message had been sent individually (docs/performance.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "proto/ids.hpp"
#include "proto/message.hpp"

namespace hlock::transport {

/// See file comment.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Routes a message to its destination. Thread-safe.
  virtual void send(const proto::Message& message) = 0;

  /// Routes a burst of messages (typically the output of one automaton
  /// step), preserving per-ordered-channel FIFO order. Implementations may
  /// coalesce same-destination messages into one wire frame; the default
  /// sends one by one. Thread-safe.
  virtual void send_batch(std::vector<proto::Message> messages) {
    for (const proto::Message& message : messages) send(message);
  }

  /// Blocks for the next message addressed to `node`; std::nullopt once
  /// the transport is shut down and drained.
  virtual std::optional<proto::Message> recv(proto::NodeId node) = 0;

  /// Blocks like recv(), then returns every message for `node` that is
  /// already deliverable, in delivery order — an empty vector only once the
  /// transport is shut down and drained. The default returns at most one.
  virtual std::vector<proto::Message> recv_ready(proto::NodeId node) {
    std::vector<proto::Message> out;
    if (std::optional<proto::Message> message = recv(node)) {
      out.push_back(std::move(*message));
    }
    return out;
  }

  /// Like recv() but bounded; std::nullopt on timeout too.
  virtual std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) = 0;

  /// Unblocks all receivers; subsequent sends are dropped.
  virtual void shutdown() = 0;

  /// Messages accepted by send() so far.
  virtual std::uint64_t messages_sent() const = 0;

  /// Encoded payload bytes shipped so far (framing included where the
  /// transport frames). Zero for transports that never encode — the
  /// bytes-per-request metric of bench/throughput_hotpath.cpp.
  virtual std::uint64_t bytes_sent() const { return 0; }

  /// Messages queued toward `node` but not yet received — the telemetry
  /// mailbox-depth gauge. Zero for transports without visible queues.
  virtual std::size_t inbox_depth(proto::NodeId node) const {
    (void)node;
    return 0;
  }
};

}  // namespace hlock::transport
