// Crash-stop recovery on the threaded runtime (docs/recovery.md): kill the
// token holder with crash_stop(), verify the survivors' heartbeat detector
// notices, a fenced epoch is minted and a blocked waiter on a survivor is
// granted. Real threads and real time — the detector timings are kept
// generous so loaded CI machines do not false-suspect live nodes.
#include <gtest/gtest.h>

#include "runtime/thread_cluster.hpp"
#include "telemetry/registry.hpp"
#include "util/check.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::ThreadCluster;
using runtime::ThreadClusterOptions;

ThreadClusterOptions recovery_options(Protocol protocol) {
  ThreadClusterOptions options;
  options.node_count = 3;
  options.protocol = protocol;
  options.recovery.enabled = true;
  options.recovery.heartbeat_interval = SimTime::ms(50);
  options.recovery.suspect_after = SimTime::ms(1000);
  return options;
}

TEST(RecoveryThread, HierCrashedHolderIsFencedOut) {
  telemetry::Registry registry;
  ThreadClusterOptions options = recovery_options(Protocol::kHierarchical);
  options.metrics = &registry;
  ThreadCluster cluster(options);

  const LockId lock{5};
  cluster.lock(NodeId{1}, lock, LockMode::kW);
  EXPECT_TRUE(cluster.holds(NodeId{1}, lock));
  cluster.crash_stop(NodeId{1});
  EXPECT_FALSE(cluster.alive(NodeId{1}));

  // Blocks across the outage: queued toward the dead holder, reconstructed
  // by the fence, granted at the regenerated root.
  cluster.lock(NodeId{2}, lock, LockMode::kW);
  EXPECT_TRUE(cluster.holds(NodeId{2}, lock));
  cluster.unlock(NodeId{2}, lock);

  EXPECT_GT(cluster.recovery_epoch_of(NodeId{0}), 0u);
  EXPECT_EQ(cluster.recovery_epoch_of(NodeId{2}),
            cluster.recovery_epoch_of(NodeId{0}));
  EXPECT_GE(cluster.recovery_counters(NodeId{0}).recoveries, 1u);
  EXPECT_GE(cluster.recovery_counters(NodeId{2}).recoveries, 1u);

  // The telemetry series moved with the recovery.
  EXPECT_GT(registry.gauge("hlock_epoch{node=\"0\"}").value(), 0.0);
}

TEST(RecoveryThread, NaimiCrashedHolderIsFencedOut) {
  ThreadCluster cluster(recovery_options(Protocol::kNaimi));
  const LockId lock{9};
  cluster.lock(NodeId{1}, lock, LockMode::kW);
  cluster.crash_stop(NodeId{1});
  cluster.lock(NodeId{2}, lock, LockMode::kW);
  EXPECT_TRUE(cluster.holds(NodeId{2}, lock));
  cluster.unlock(NodeId{2}, lock);
  EXPECT_GT(cluster.recovery_epoch_of(NodeId{2}), 0u);
}

TEST(RecoveryThread, OperationsOnCrashedNodeThrow) {
  ThreadCluster cluster(recovery_options(Protocol::kHierarchical));
  cluster.crash_stop(NodeId{1});
  EXPECT_THROW(cluster.lock(NodeId{1}, LockId{1}, LockMode::kR), UsageError);
  EXPECT_THROW(cluster.unlock(NodeId{1}, LockId{1}), UsageError);
}

TEST(RecoveryThread, CrashStopRequiresRecovery) {
  ThreadClusterOptions options;
  options.node_count = 2;
  ThreadCluster cluster(options);
  EXPECT_THROW(cluster.crash_stop(NodeId{1}), UsageError);
}

TEST(RecoveryThread, RecoveryForcesSingleShard) {
  ThreadClusterOptions options = recovery_options(Protocol::kHierarchical);
  options.engine_shards = 4;
  EXPECT_THROW(ThreadCluster cluster(options), UsageError);
  options.engine_shards = 0;
  ThreadCluster cluster(options);
  EXPECT_EQ(cluster.engine_shards(), 1u);
}

}  // namespace
}  // namespace hlock
