#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hlock::stats {

void TextTable::set_header(std::vector<std::string> header) {
  HLOCK_REQUIRE(!header.empty(), "a table needs at least one column");
  HLOCK_REQUIRE(rows_.empty(), "set the header before adding rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  HLOCK_REQUIRE(row.size() == header_.size(),
                "row width does not match the header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells, bool left) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (left) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };
  emit(header_, /*left=*/true);
  std::size_t total = header_.size() > 0 ? 2 * (header_.size() - 1) : 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, /*left=*/false);
  return os.str();
}

std::string TextTable::render_csv() const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << field(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace hlock::stats
