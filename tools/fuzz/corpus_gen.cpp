// Writes the committed fuzz corpus seeds (tools/fuzz/corpus/*.bin).
//
// Each seed is one canonically-encoded frame covering a payload kind or an
// envelope edge case, so the libFuzzer run starts from every branch of the
// decoder and the replay driver regression-checks them on every build.
// Run after extending the wire format (ROADMAP: every new message kind
// must gain seeds):
//
//   cmake --build build --target fuzz_corpus_gen
//   build/tools/fuzz/fuzz_corpus_gen tools/fuzz/corpus
//
// Only the recovery-era seeds are generated here; the original protocol
// seeds predate the generator and are kept as committed bytes (their
// stability IS the regression being checked).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "proto/codec.hpp"
#include "proto/message.hpp"

namespace {

using namespace hlock::proto;

void write(const std::string& dir, const std::string& name,
           const std::vector<std::byte>& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "corpus_gen: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_corpus_gen <corpus-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];

  // ---- Recovery message kinds (docs/recovery.md) ----
  write(dir, "single_heartbeat.bin",
        encode(Message{NodeId{1}, NodeId{2}, LockId{0}, Heartbeat{}}));

  write(dir, "single_suspect.bin",
        encode(Message{NodeId{4}, NodeId{0}, LockId{0}, Suspect{NodeId{3}}}));

  ElectToken report;
  report.dead = {NodeId{0}, NodeId{3}};
  report.lock_count = 2;
  report.lock_index = 1;
  report.epoch = 7;
  report.has_token = true;
  report.held = LockMode::kW;
  report.waiting = true;
  report.wait_mode = LockMode::kR;
  report.wait_seq = 42;
  report.wait_priority = 3;
  report.upgrading = true;
  write(dir, "single_elect_token.bin",
        encode(Message{NodeId{2}, NodeId{1}, LockId{5}, report}));

  EpochFence fence;
  fence.dead = {NodeId{1}};
  fence.epoch = 12;
  fence.new_root = NodeId{2};
  fence.holders = {{NodeId{2}, LockMode::kW}, {NodeId{4}, LockMode::kIR}};
  fence.queue = {QueuedRequest{NodeId{3}, LockMode::kR, 9, 0},
                 QueuedRequest{NodeId{4}, LockMode::kW, 4, 5}};
  fence.fence_index = 1;
  fence.fence_count = 3;
  write(dir, "single_epoch_fence.bin",
        encode(Message{NodeId{2}, NodeId{3}, LockId{5}, fence}));

  // ---- Stale-epoch batch envelope ----
  // One coalesced flush mixing post-fence traffic (envelope epoch 7), a
  // pre-crash straggler (stale epoch 3 — the receive-side epoch gate's
  // food) and an epoch-less recovery kind, so the batch decoder's
  // per-message epoch field is exercised with divergent values.
  Message fresh{NodeId{2}, NodeId{4}, LockId{5},
                HierRequest{NodeId{2}, LockMode::kR, 17, 0}};
  fresh.epoch = 7;
  Message stale{NodeId{1}, NodeId{4}, LockId{5},
                HierToken{LockMode::kW, LockMode::kNL,
                          {QueuedRequest{NodeId{0}, LockMode::kIW, 2, 0}}}};
  stale.epoch = 3;
  Message gossip{NodeId{2}, NodeId{4}, LockId{0}, Suspect{NodeId{1}}};
  std::vector<std::byte> batch;
  encode_batch_into(std::vector<Message>{fresh, stale, gossip}, batch);
  write(dir, "batch_stale_epoch.bin", batch);

  return 0;
}
