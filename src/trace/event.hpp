// Structured protocol trace events.
//
// Every observable protocol action — grants, queue/forward decisions,
// freezes, token transfers, copyset membership changes, critical-section
// entries — is one typed TraceEvent. The hierarchical automaton emits them
// (when HierConfig::trace_events is on) as part of its Effects, so a trace
// is an exact, machine-checkable account of every rule the protocol
// applied. The conformance linter (src/lint) replays traces against the
// paper's spec; the TraceRecorder renders them as human timelines; the
// format_event()/parse_event() pair round-trips them through text files for
// offline linting (tools/hlock_lint).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "util/sim_time.hpp"

namespace hlock::trace {

/// What happened. Values index TraceRecorder::histogram() and are stable
/// within one trace dump (the text format carries names, not numbers).
enum class EventKind : std::uint8_t {
  kMessage = 0,     ///< a protocol message was sent (runtime-observed)
  kRequest,         ///< a node issued its own lock request
  kGrant,           ///< a node copy-granted `mode` to `peer` (Rule 3)
  kLocalGrant,      ///< a node granted its own request from local knowledge
  kQueue,           ///< a node queued `peer`'s request locally (Rule 4)
  kForward,         ///< a node forwarded `peer`'s request (Rule 4.1, F)
  kFreeze,          ///< the node's frozen set grew; `modes` = full new set
  kUnfreeze,        ///< the node's frozen set shrank; `modes` = full new set
  kTokenTransfer,   ///< the token moved from `node` to `peer` (Rule 3)
  kCopysetJoin,     ///< `node` admitted (or re-recorded) `peer` at `mode`
  kCopysetLeave,    ///< `node` dropped `peer` from its copyset
  kEnterCs,         ///< a node entered its critical section holding `mode`
  kExitCs,          ///< a node released `mode`
  kUpgradeBegin,    ///< a Rule 7 upgrade was initiated (U held, W pending)
  kUpgraded,        ///< a Rule 7 upgrade completed; the node now holds W
  kNote,            ///< free-form annotation from the application
  kNodeDead,        ///< `node` now considers `peer` crashed (recovery)
  kFence,           ///< `node` entered recovery epoch `epoch`, re-rooted at
                    ///< `peer` (docs/recovery.md)
};

/// Number of distinct EventKind values.
inline constexpr std::size_t kEventKindCount = 18;

/// Returns "message", "grant", "enter-cs", ...
std::string to_string(EventKind kind);

/// Parses the names produced by to_string(EventKind).
std::optional<EventKind> parse_event_kind(const std::string& name);

/// One protocol event. Field meaning varies slightly by kind (see the
/// per-kind comments above); unused fields keep their defaults.
struct TraceEvent {
  /// Timestamp, stamped by the runtime/recorder (automatons hold no clock).
  SimTime at{};
  /// Lamport timestamp of the acting node at the step that produced the
  /// event, stamped by the runtime (zero when the runtime does not run a
  /// Lamport clock). Orders events causally across nodes even when wall or
  /// simulated clocks disagree — see obs/lamport.hpp.
  std::uint64_t lamport = 0;
  EventKind kind = EventKind::kNote;
  /// Acting node (the sender for kMessage).
  proto::NodeId node;
  /// Counterparty: the requester being granted/queued/forwarded, the child
  /// joining/leaving a copyset, the token recipient, the receiver of a
  /// message. none when the action has no counterparty.
  proto::NodeId peer;
  proto::LockId lock{};
  /// Principal mode of the action: the requested/granted/held mode.
  proto::LockMode mode = proto::LockMode::kNL;
  /// Decision context of the acting node: its owned mode for grant and
  /// token-queue decisions, its own pending mode for non-token
  /// queue/forward decisions, the shipped residual owned mode for token
  /// transfers.
  proto::LockMode ctx = proto::LockMode::kNL;
  /// Mode set payload: the node's complete frozen set after a
  /// kFreeze/kUnfreeze change.
  proto::ModeSet modes;
  /// True if the acting node held the token when the event fired.
  bool token = false;
  /// Request sequence number, where the action concerns a request.
  std::uint64_t seq = 0;
  std::uint8_t priority = 0;
  /// Recovery epoch of the acting node when the event fired (0 before any
  /// crash recovery). The token-conservation lint is per-epoch.
  std::uint32_t epoch = 0;
  /// Rendered message (kMessage), forward target (kForward), or free text.
  std::string detail;

  bool operator==(const TraceEvent&) const = default;
};

/// One-line human rendering of the event body (no timestamp/node prefix —
/// TraceRecorder::render adds those): "grant R -> node2 (owned=R, token)".
std::string to_string(const TraceEvent& event);

/// Machine-readable single-line encoding, stable across runs:
/// "1500 grant node0 node2 0 R R {} T 4 0 7 |detail" (the field before
/// the detail marker is the Lamport timestamp). Newlines in `detail` are
/// escaped. parse_event() inverts it.
std::string format_event(const TraceEvent& event);

/// Parses one format_event() line; std::nullopt on malformed input. Also
/// accepts the pre-Lamport 11-field layout (lamport defaults to zero) so
/// old trace dumps keep replaying.
std::optional<TraceEvent> parse_event(const std::string& line);

}  // namespace hlock::trace
