// The protocol across REAL OS PROCESSES.
//
// The parent binds one loopback listener per node (so every port is known
// before any child exists), then forks one child per node. Each child
// adopts its listener, builds a TcpNode + HierEngine, and runs a small
// event loop: serve incoming protocol messages, perform K exclusive
// critical sections of its own, and keep serving until every process is
// done. Mutual exclusion is verified the only way that matters across
// processes: a non-atomic counter in a MAP_SHARED page. Any overlap of
// critical sections loses increments.
//
// Processes share no protocol state whatsoever — only sockets and the
// audited counter page.
#include <gtest/gtest.h>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <vector>

#include "runtime/engine.hpp"
#include "transport/tcp_node.hpp"
#include "transport/tcp_socket.hpp"
#include "util/check.hpp"

namespace hlock::transport {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

constexpr std::size_t kProcesses = 4;
constexpr long kIncrementsPerProcess = 25;
const LockId kLock{0};

/// The audited cross-process state.
struct SharedPage {
  volatile long counter;
  volatile long done_processes;
};

/// One child process's whole life. Never returns; _exit()s with 0 on
/// success, 1 on any protocol error.
[[noreturn]] void child_main(std::uint32_t self_value, int listen_fd,
                             const std::vector<std::uint16_t>& ports,
                             SharedPage* shared) {
  const NodeId self{self_value};
  std::vector<TcpPeer> peers;
  for (std::uint32_t i = 0; i < ports.size(); ++i) {
    if (i != self_value) peers.push_back({NodeId{i}, ports[i]});
  }

  try {
    TcpNode transport{self, listen_fd, peers};
    runtime::HierEngine engine{self, NodeId{0}};

    bool in_cs = false;
    bool waiting = false;
    long completed = 0;

    auto apply = [&](core::Effects&& fx) {
      for (const proto::Message& message : fx.messages) {
        transport.send(message);
      }
      if (fx.entered_cs) {
        in_cs = true;
        waiting = false;
      }
    };

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      if (std::chrono::steady_clock::now() > deadline) _exit(1);

      if (in_cs) {
        // The audited critical section: a racy read-modify-write that
        // only stays correct under true mutual exclusion.
        const long snapshot = shared->counter;
        for (int spin = 0; spin < 500; ++spin) {
          __asm__ volatile("" ::: "memory");
        }
        shared->counter = snapshot + 1;
        apply(engine.release(kLock));
        in_cs = false;
        if (++completed == kIncrementsPerProcess) {
          __atomic_add_fetch(
              const_cast<long*>(&shared->done_processes), 1,
              __ATOMIC_SEQ_CST);
        }
      } else if (!waiting && completed < kIncrementsPerProcess) {
        waiting = true;
        apply(engine.request(kLock, LockMode::kW));
        continue;  // the request may have been self-granted synchronously
      }

      // Serve protocol traffic (also our only wait point).
      if (auto message =
              transport.recv_for(self, std::chrono::milliseconds(20))) {
        apply(engine.deliver(*message));
      } else if (completed >= kIncrementsPerProcess &&
                 __atomic_load_n(
                     const_cast<long*>(&shared->done_processes),
                     __ATOMIC_SEQ_CST) ==
                     static_cast<long>(kProcesses)) {
        // Everyone finished and the wire went quiet: safe to leave.
        break;
      }
    }
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

TEST(MultiProcess, MutualExclusionAcrossForkedProcesses) {
  // The shared, audited page.
  void* page = ::mmap(nullptr, sizeof(SharedPage), PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(page, MAP_FAILED);
  auto* shared = new (page) SharedPage{0, 0};

  // Bind every listener in the parent so all ports are known pre-fork.
  std::vector<int> listeners;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kProcesses; ++i) {
    listeners.push_back(listen_loopback(0));
    ports.push_back(local_port(listeners.back()));
  }

  std::vector<pid_t> children;
  for (std::uint32_t i = 0; i < kProcesses; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: keep only our own listener.
      for (std::uint32_t k = 0; k < kProcesses; ++k) {
        if (k != i) ::close(listeners[k]);
      }
      child_main(i, listeners[i], ports, shared);  // never returns
    }
    children.push_back(pid);
  }
  // Parent: the children own the listeners now.
  for (int fd : listeners) ::close(fd);

  bool all_ok = true;
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    all_ok &= WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  EXPECT_TRUE(all_ok) << "a child process failed or timed out";
  EXPECT_EQ(shared->counter,
            static_cast<long>(kProcesses) * kIncrementsPerProcess)
      << "lost increments: mutual exclusion was violated across processes";
  ::munmap(page, sizeof(SharedPage));
}

TEST(TcpNode, PairwiseMessagingWithinOneProcess) {
  // Two endpoints, no shared state beyond the port table.
  TcpNode a{NodeId{0}};
  TcpNode b{NodeId{1}};
  a.add_peer({NodeId{1}, b.port()});
  b.add_peer({NodeId{0}, a.port()});

  a.send(proto::Message{NodeId{0}, NodeId{1}, kLock,
                        proto::NaimiRequest{NodeId{0}, 1}});
  const auto at_b = b.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(at_b.has_value());
  b.send(proto::Message{NodeId{1}, NodeId{0}, kLock, proto::NaimiToken{}});
  const auto at_a = a.recv_for(NodeId{0}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(at_a.has_value());
  EXPECT_TRUE(
      std::holds_alternative<proto::NaimiToken>(at_a->payload));
}

TEST(TcpNode, Contracts) {
  TcpNode node{NodeId{3}};
  EXPECT_THROW(node.recv_for(NodeId{1}, std::chrono::milliseconds(1)),
               UsageError);
  EXPECT_THROW(node.send(proto::Message{NodeId{1}, NodeId{3}, kLock,
                                        proto::NaimiToken{}}),
               UsageError)
      << "sending another node's message";
  EXPECT_THROW(node.send(proto::Message{NodeId{3}, NodeId{9}, kLock,
                                        proto::NaimiToken{}}),
               UsageError)
      << "unknown peer";
  EXPECT_THROW(node.add_peer({NodeId{3}, 1}), UsageError) << "self peer";
  EXPECT_GT(node.port(), 0);
}

}  // namespace
}  // namespace hlock::transport
