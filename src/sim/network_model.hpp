// Network latency model for the simulated cluster.
//
// Messages between node pairs experience a randomized one-way latency drawn
// from a configurable distribution, as in the paper ("the network latency
// experienced by messages was randomized with mean values of ... 150 msec").
// Channels are FIFO per (source, destination) ordered pair — both testbeds
// the paper used (TCP/IP and MPI over the SP Colony switch) deliver
// point-to-point messages in order, and the protocol's release/request
// ordering analysis relies on it.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "proto/ids.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hlock::sim {

/// Computes delivery times for messages, enforcing per-channel FIFO order.
class NetworkModel {
 public:
  /// `latency` models the one-way delay of each message; `rng` must outlive
  /// the model (typically a dedicated split stream of the run's seed).
  NetworkModel(DurationDist latency, Rng rng);

  /// Returns the absolute delivery time for a message sent at `now` from
  /// `from` to `to`: now + sampled latency, pushed after the previous
  /// delivery on the same ordered channel if the draw would overtake it.
  SimTime delivery_time(SimTime now, proto::NodeId from, proto::NodeId to);

  /// The configured latency distribution.
  const DurationDist& latency() const { return latency_; }

 private:
  DurationDist latency_;
  Rng rng_;
  /// Last scheduled delivery per ordered (from, to) channel.
  std::map<std::pair<proto::NodeId, proto::NodeId>, SimTime> channel_front_;
};

/// Parameters describing one of the paper's testbeds.
struct TestbedPreset {
  std::string name;
  DurationDist message_latency;
};

/// §4.1 testbed: 16 AMD Athlon machines on a FastEther switch via TCP/IP;
/// the paper randomizes message latency with a 150 ms mean.
TestbedPreset linux_cluster_preset();

/// §4.2 testbed: IBM SP, Colony switch, user-level MPI. The paper does not
/// quote the latency; 150 us (uniformly randomized) reproduces the reported
/// single-digit-millisecond response times with the observed 3-9 messages
/// per request.
TestbedPreset ibm_sp_preset();

}  // namespace hlock::sim
